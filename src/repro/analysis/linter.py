"""AST-based determinism linter for the simulator codebase.

Every paper figure this repository regenerates is a *trace* of the
discrete-event simulator, and the bit-identical verification the perf
work leans on holds only if the code obeys a handful of disciplines
that ordinary Python never enforces.  This linter enforces them
statically.

Rule catalog
------------

========  ==============================================================
DET101    Wall-clock access (``time.time``/``perf_counter``/
          ``datetime.now`` ...): simulated time is ``Simulator.now``;
          wall-clock reads make traces machine-dependent.
DET102    Global/unseeded RNG (``random.*``, legacy ``numpy.random.*``
          module calls, ``default_rng()``/``SeedSequence()`` with no
          seed): every draw must come from a named
          ``repro.simcore.rand.RandomStreams`` stream or an explicitly
          seeded generator.
DET103    Iteration over a ``set``/``frozenset``/``.keys()`` view whose
          loop body schedules events (``schedule``/``succeed``/
          ``fail``/``timeout``/``process``/``put``/``interrupt`` or an
          ``Event``/``Timeout`` construction): set order is hash-
          randomised, so the heap insertion order — and therefore
          same-instant tie-breaking — would differ between runs.
DET104    Float ``==``/``!=`` on simulated timestamps (names like
          ``now``, ``deadline``, ``*_time``, ``*_until``, ``t_*``):
          timestamps are accumulated floats; exact comparison is a
          latent flakiness bug.  Compare with a tolerance or restructure.
DET105    Bare ``except:`` or broad ``except (Base)Exception:`` without
          a re-raise: these swallow ``SimulationError`` and turn loud
          corruption into silently-wrong traces.
DET106    Mutable default argument (list/dict/set literal or
          constructor): state leaks across calls and across epochs.
DET107    A process generator (name ending ``_proc`` or passed to
          ``sim.process``) yields a value that is statically *not* an
          event (literal, tuple, comparison, f-string, bare ``yield``):
          the engine would throw ``SimulationError`` at runtime; catch
          it at lint time where decidable.
DET108    An ordering decision (``sorted``/``.sort``/``min``/``max``
          key, ``heapq`` entry, or a ``<``/``>`` comparison) derived
          from ``id(obj)`` or ``hash(obj)``: CPython ``id``s are
          allocation addresses and object hashes may be randomised, so
          any tie-break built on them differs between runs.
========  ==============================================================

The ``RACE201``–``RACE206`` cohort-race family (see
:mod:`repro.analysis.races`) rides on the same suppression and
rendering machinery and is included by :func:`lint_paths` /
``python -m repro.lint`` automatically.

Suppression syntax
------------------

A violation is suppressed by an inline comment on the flagged line, or
on a comment-only line directly above it::

    except BaseException as exc:  # sim-lint: disable=DET105 -- routed into Process.fail
    # sim-lint: disable=DET101,DET102 -- wall-clock benchmark harness
    t0 = time.perf_counter()

``disable=all`` suppresses every rule for that line.  The ``--
justification`` tail is conventionally required by review but not by
the tool.  ``--no-suppress`` reports suppressed findings anyway (for
auditing the suppression inventory).
"""

from __future__ import annotations

import ast
import json
import re
import sys
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Rule code -> one-line description (the ``--rules`` catalog).
RULES: Dict[str, str] = {
    "DET101": "wall-clock access; use Simulator.now for simulated time",
    "DET102": "global or unseeded RNG; use repro.simcore.rand streams",
    "DET103": "iteration over an unordered set reaches event scheduling",
    "DET104": "float ==/!= on simulated timestamps",
    "DET105": "bare/broad except can swallow SimulationError",
    "DET106": "mutable default argument",
    "DET107": "process generator yields a statically non-event value",
    "DET108": "ordering decision derived from id()/hash() tie-breaks",
}

#: Files (path suffixes, '/'-normalised) exempt from the RNG rule — the
#: seeded-stream implementation itself must touch numpy.random.
RNG_EXEMPT_SUFFIXES = ("repro/simcore/rand.py",)

_WALLCLOCK_TIME_FNS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock",
}
_DATETIME_NOW_FNS = {"now", "utcnow", "today"}

#: Legacy numpy.random module-level functions (the hidden global state).
_NP_RANDOM_GLOBAL_FNS = {
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
    "normal", "standard_normal", "poisson", "binomial", "exponential",
    "beta", "gamma", "bytes", "get_state", "set_state",
}

#: Calls considered "event scheduling" for DET103 (attribute or name).
_SCHEDULING_ATTRS = {
    "schedule", "_schedule", "succeed", "fail", "timeout", "process",
    "put", "interrupt",
}
_EVENT_CTORS = {"Event", "Timeout", "Process", "AllOf", "AnyOf", "Condition"}

#: Timestamp-name heuristics for DET104.
_TS_EXACT = {"now", "when", "deadline"}
_TS_SUFFIXES = ("_time", "_times", "_until", "_at", "_deadline")
_TS_PREFIXES = ("t_",)

#: DET108 — ordering builtins and heapq entry points.
_ORDERING_FNS = {"sorted", "min", "max"}
_HEAPQ_FNS = {"heappush", "heappushpop", "heapreplace", "heapify",
              "nlargest", "nsmallest", "merge"}

_SUPPRESS_RE = re.compile(
    r"#\s*sim-lint:\s*disable=([A-Za-z0-9_,\s]+?)(?:\s*--.*)?$")


@dataclass(frozen=True)
class Finding:
    """One lint violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    suppressed: bool = False

    def render(self) -> str:
        note = "  [suppressed]" if self.suppressed else ""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} {self.message}{note}")


# ----------------------------------------------------------------------
# Suppression handling
# ----------------------------------------------------------------------
def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Line number -> set of suppressed codes (``{'all'}`` wildcard).

    A directive applies to its own line; a directive on a comment-only
    line also applies to the next line.
    """
    out: Dict[int, Set[str]] = {}
    lines = source.splitlines()
    for i, text in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        codes = {c.strip().upper() for c in m.group(1).split(",") if c.strip()}
        codes = {("all" if c == "ALL" else c) for c in codes}
        out.setdefault(i, set()).update(codes)
        if text.lstrip().startswith("#"):  # comment-only: covers next line
            out.setdefault(i + 1, set()).update(codes)
    return out


def _is_suppressed(finding_line: int, code: str,
                   table: Dict[int, Set[str]]) -> bool:
    codes = table.get(finding_line)
    return bool(codes) and ("all" in codes or code in codes)


# ----------------------------------------------------------------------
# The visitor
# ----------------------------------------------------------------------
class _ImportTracker:
    """Which local names refer to the modules the rules care about."""

    def __init__(self) -> None:
        self.time_aliases: Set[str] = set()       # import time [as t]
        self.random_aliases: Set[str] = set()     # import random [as r]
        self.numpy_aliases: Set[str] = set()      # import numpy [as np]
        self.datetime_aliases: Set[str] = set()   # datetime.datetime names
        self.heapq_aliases: Set[str] = set()      # import heapq [as hq]
        self.heapq_fn_names: Set[str] = set()     # from heapq import heappush
        #: from-imports of individual wall-clock / RNG functions.
        self.wallclock_names: Set[str] = set()    # from time import time
        self.global_rng_names: Set[str] = set()   # from random import random
        self.default_rng_names: Set[str] = set()  # from numpy.random import default_rng
        self.seedseq_names: Set[str] = set()

    def scan(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name
                    if alias.name == "time":
                        self.time_aliases.add(name)
                    elif alias.name == "random":
                        self.random_aliases.add(name)
                    elif alias.name == "numpy":
                        self.numpy_aliases.add(name)
                    elif alias.name == "numpy.random":
                        # `import numpy.random` binds `numpy`.
                        self.numpy_aliases.add(name.split(".")[0])
                    elif alias.name == "datetime":
                        self.datetime_aliases.add(name)
                    elif alias.name == "heapq":
                        self.heapq_aliases.add(name)
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                for alias in node.names:
                    name = alias.asname or alias.name
                    if mod == "time" and alias.name in _WALLCLOCK_TIME_FNS:
                        self.wallclock_names.add(name)
                    elif mod == "random":
                        self.global_rng_names.add(name)
                    elif mod in ("numpy.random", "numpy"):
                        if alias.name == "default_rng":
                            self.default_rng_names.add(name)
                        elif alias.name == "SeedSequence":
                            self.seedseq_names.add(name)
                        elif alias.name in _NP_RANDOM_GLOBAL_FNS:
                            self.global_rng_names.add(name)
                    elif mod == "datetime" and alias.name == "datetime":
                        self.datetime_aliases.add(name)
                    elif mod == "heapq" and alias.name in _HEAPQ_FNS:
                        self.heapq_fn_names.add(name)


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ('a','b','c'); None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _has_seed_args(call: ast.Call) -> bool:
    """True if default_rng()/SeedSequence() received any entropy source."""
    if call.args:
        # default_rng(None) is as unseeded as default_rng().
        a = call.args[0]
        return not (isinstance(a, ast.Constant) and a.value is None)
    return any(kw.arg in ("seed", "entropy") and not (
        isinstance(kw.value, ast.Constant) and kw.value.value is None)
        for kw in call.keywords)


def _is_set_expr(node: ast.AST, imports: _ImportTracker) -> Optional[str]:
    """A description if *node* is statically an unordered iterable."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in (
                "set", "frozenset"):
            return f"{node.func.id}()"
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            # dict.keys() is insertion-ordered since 3.7, but whether the
            # *insertion* order is deterministic is invisible here; the
            # rule follows the conservative house style: iterate a list
            # or sort explicitly before scheduling from it.
            return ".keys()"
    return None


def _contains_scheduling(body: Iterable[ast.AST]) -> Optional[ast.Call]:
    """First scheduling call inside *body* statements, if any."""
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if isinstance(fn, ast.Attribute) and fn.attr in _SCHEDULING_ATTRS:
                return node
            if isinstance(fn, ast.Name) and fn.id in _EVENT_CTORS:
                return node
    return None


def _timestampish(node: ast.AST) -> Optional[str]:
    """The timestamp-like identifier inside an expression, if any."""
    name: Optional[str] = None
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Subscript):
        return _timestampish(node.value)
    if name is None:
        return None
    low = name.lower()
    if low in _TS_EXACT or low.lstrip("_") in _TS_EXACT:
        return name
    if low.endswith(_TS_SUFFIXES) or low.startswith(_TS_PREFIXES):
        return name
    return None


_MUTABLE_CTORS = {"list", "dict", "set", "deque", "defaultdict",
                  "bytearray", "Counter", "OrderedDict"}

#: Yield values that are statically decidable to not be events.
_NON_EVENT_YIELDS = (ast.Constant, ast.Tuple, ast.List, ast.Dict, ast.Set,
                     ast.BinOp, ast.BoolOp, ast.Compare, ast.UnaryOp,
                     ast.JoinedStr, ast.ListComp, ast.SetComp, ast.DictComp,
                     ast.GeneratorExp, ast.Lambda)


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, imports: _ImportTracker,
                 process_fns: Set[str], rng_exempt: bool) -> None:
        self.path = path
        self.imports = imports
        self.process_fns = process_fns
        self.rng_exempt = rng_exempt
        self.findings: List[Finding] = []
        self._func_stack: List[ast.AST] = []

    # -- helpers -------------------------------------------------------
    def _add(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(Finding(
            self.path, getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0) + 1, code, message))

    # -- DET101 / DET102: calls ---------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        imp = self.imports
        dotted = _dotted(node.func)
        if dotted:
            head, tail = dotted[0], dotted[-1]
            # DET101 -- wall clock.
            if (len(dotted) == 2 and head in imp.time_aliases
                    and tail in _WALLCLOCK_TIME_FNS):
                self._add(node, "DET101",
                          f"wall-clock call {'.'.join(dotted)}(); simulated "
                          "time is Simulator.now")
            elif (head in imp.datetime_aliases
                  and tail in _DATETIME_NOW_FNS):
                self._add(node, "DET101",
                          f"wall-clock call {'.'.join(dotted)}()")
            elif len(dotted) == 1 and head in imp.wallclock_names:
                self._add(node, "DET101", f"wall-clock call {head}()")
            # DET102 -- global / unseeded RNG.
            if not self.rng_exempt:
                self._check_rng(node, dotted)
        self._check_id_ordering(node)
        self.generic_visit(node)

    # -- DET108: id()/hash() feeding ordering decisions ----------------
    def _check_id_ordering(self, node: ast.Call) -> None:
        fn = node.func
        imp = self.imports
        is_ordering = False
        what = ""
        if isinstance(fn, ast.Name):
            if fn.id in _ORDERING_FNS or fn.id in imp.heapq_fn_names:
                is_ordering = True
                what = f"{fn.id}()"
        elif isinstance(fn, ast.Attribute):
            if fn.attr == "sort":
                is_ordering = True
                what = ".sort()"
            elif (fn.attr in _HEAPQ_FNS
                  and isinstance(fn.value, ast.Name)
                  and fn.value.id in imp.heapq_aliases):
                is_ordering = True
                what = f"{fn.value.id}.{fn.attr}()"
        if not is_ordering:
            return
        exprs = list(node.args) + [kw.value for kw in node.keywords]
        tiebreak = _find_id_hash_call(exprs)
        if tiebreak is None:
            # ``key=id`` / ``key=hash`` pass the builtin uncalled.
            for expr in exprs:
                if isinstance(expr, ast.Name) and expr.id in ("id", "hash"):
                    tiebreak = expr.id
                    break
        if tiebreak is not None:
            self._add(node, "DET108",
                      f"{what} orders by {tiebreak}; CPython ids/object "
                      "hashes differ between runs — use a stable "
                      "sequence number or explicit key instead")

    def _check_rng(self, node: ast.Call, dotted: Tuple[str, ...]) -> None:
        imp = self.imports
        head, tail = dotted[0], dotted[-1]
        if len(dotted) == 2 and head in imp.random_aliases:
            self._add(node, "DET102",
                      f"global RNG call {'.'.join(dotted)}(); draw from a "
                      "named repro.simcore.rand stream instead")
            return
        if len(dotted) == 1:
            if head in imp.global_rng_names:
                self._add(node, "DET102", f"global RNG call {head}()")
            elif (head in (imp.default_rng_names | imp.seedseq_names)
                  and not _has_seed_args(node)):
                self._add(node, "DET102",
                          f"{head}() without a seed draws OS entropy")
            return
        # numpy.random.<fn> chains: np.random.X or numpy.random.X
        if (len(dotted) >= 3 and head in imp.numpy_aliases
                and dotted[1] == "random"):
            if tail in _NP_RANDOM_GLOBAL_FNS:
                self._add(node, "DET102",
                          f"legacy numpy global RNG {'.'.join(dotted)}()")
            elif (tail in ("default_rng", "SeedSequence")
                  and not _has_seed_args(node)):
                self._add(node, "DET102",
                          f"{'.'.join(dotted)}() without a seed draws "
                          "OS entropy")

    # -- DET103: unordered iteration into the scheduler ----------------
    def visit_For(self, node: ast.For) -> None:
        desc = _is_set_expr(node.iter, self.imports)
        if desc:
            call = _contains_scheduling(node.body)
            if call is not None:
                target = _dotted(call.func)
                self._add(node, "DET103",
                          f"iterating {desc} feeds event scheduling "
                          f"({'.'.join(target) if target else 'call'}() at "
                          f"line {call.lineno}); order is not deterministic "
                          "— sort or use an ordered container")
        self.generic_visit(node)

    def _check_comp(self, node: ast.AST) -> None:
        for gen in node.generators:
            desc = _is_set_expr(gen.iter, self.imports)
            if desc:
                elts = [node.elt] if hasattr(node, "elt") else [node.key,
                                                                node.value]
                call = _contains_scheduling(elts)
                if call is not None:
                    self._add(node, "DET103",
                              f"comprehension over {desc} creates/schedules "
                              "events in unordered set order")
        self.generic_visit(node)

    visit_ListComp = _check_comp
    visit_SetComp = _check_comp
    visit_GeneratorExp = _check_comp
    visit_DictComp = _check_comp

    # -- DET104: float equality on timestamps --------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Lt, ast.Gt, ast.LtE, ast.GtE))
               for op in node.ops):
            tiebreak = _find_id_hash_call(
                [node.left] + list(node.comparators), top_only=True)
            if tiebreak is not None:
                self._add(node, "DET108",
                          f"ordering comparison on {tiebreak}; CPython "
                          "ids/object hashes differ between runs — use "
                          "a stable sequence number instead")
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            for side in [node.left] + list(node.comparators):
                # `x.completion_time == SENTINEL` style None/int checks
                # are fine; only flag float-ish comparands.
                other_side_none = any(
                    isinstance(c, ast.Constant) and c.value is None
                    for c in [node.left] + list(node.comparators))
                if other_side_none:
                    continue
                name = _timestampish(side)
                if name:
                    self._add(node, "DET104",
                              f"float equality on timestamp-like {name!r}; "
                              "timestamps are accumulated floats — compare "
                              "with a tolerance")
                    break
        self.generic_visit(node)

    # -- DET105: broad excepts -----------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = False
        if node.type is None:
            broad = True
            what = "bare except:"
        else:
            types = (node.type.elts if isinstance(node.type, ast.Tuple)
                     else [node.type])
            names = {t.id for t in types if isinstance(t, ast.Name)}
            hit = names & {"Exception", "BaseException"}
            broad = bool(hit)
            what = f"except {'/'.join(sorted(hit))}" if hit else ""
        if broad:
            reraises = any(isinstance(n, ast.Raise)
                           for stmt in node.body for n in ast.walk(stmt))
            if not reraises:
                self._add(node, "DET105",
                          f"{what} without re-raise can swallow "
                          "SimulationError; catch specific exceptions")
        self.generic_visit(node)

    # -- DET106: mutable defaults --------------------------------------
    def _check_defaults(self, node: ast.AST) -> None:
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults
                                              if d is not None]:
            bad = None
            if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                    ast.ListComp, ast.DictComp, ast.SetComp)):
                bad = "literal"
            elif (isinstance(default, ast.Call)
                  and isinstance(default.func, ast.Name)
                  and default.func.id in _MUTABLE_CTORS):
                bad = f"{default.func.id}()"
            if bad:
                self._add(default, "DET106",
                          f"mutable default argument ({bad}) in "
                          f"{node.name}(); use None and create inside")

    # -- DET107: non-event yields in process generators ----------------
    def _visit_func(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        if node.name in self.process_fns:
            for sub in _walk_skip_nested(node):
                if isinstance(sub, ast.Expr) and isinstance(sub.value,
                                                            ast.Yield):
                    y = sub.value
                    if y.value is None:
                        self._add(y, "DET107",
                                  f"bare yield in process generator "
                                  f"{node.name}(); processes must yield "
                                  "events")
                    elif isinstance(y.value, _NON_EVENT_YIELDS):
                        kind = type(y.value).__name__
                        self._add(y, "DET107",
                                  f"process generator {node.name}() yields "
                                  f"a {kind}, which is statically not an "
                                  "Event")
        self.generic_visit(node)

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func


def _find_id_hash_call(exprs: Iterable[ast.AST],
                       top_only: bool = False) -> Optional[str]:
    """First ``id(...)``/``hash(...)`` call within *exprs*, rendered.

    With *top_only*, only the expressions themselves are inspected (for
    comparisons); otherwise the search descends into key lambdas and
    tuple entries.
    """
    for expr in exprs:
        candidates = [expr] if top_only else list(ast.walk(expr))
        for node in candidates:
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in ("id", "hash") and node.args):
                arg = node.args[0]
                inner = (arg.id if isinstance(arg, ast.Name)
                         else type(arg).__name__.lower())
                return f"{node.func.id}({inner})"
    return None


def _walk_skip_nested(func_node: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested defs/lambdas
    (their yields belong to a different generator)."""
    stack = list(ast.iter_child_nodes(func_node))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _collect_process_fns(tree: ast.AST) -> Set[str]:
    """Function names that are sim processes, statically decided.

    A function is a process if its name ends with ``_proc`` or if a
    call of it appears as the first argument of a ``*.process(...)``
    call anywhere in the module (``sim.process(worker(w))``).
    """
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.endswith("_proc"):
                names.add(node.name)
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "process" and node.args):
            first = node.args[0]
            if isinstance(first, ast.Call):
                target = _dotted(first.func)
                if target:
                    names.add(target[-1])
    return names


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def lint_source(source: str, path: str = "<string>",
                keep_suppressed: bool = False) -> List[Finding]:
    """Lint one source string; returns findings (suppressed ones removed
    unless *keep_suppressed*, in which case they are marked)."""
    tree = ast.parse(source, filename=path)
    imports = _ImportTracker()
    imports.scan(tree)
    norm = path.replace("\\", "/")
    rng_exempt = norm.endswith(RNG_EXEMPT_SUFFIXES)
    visitor = _Linter(path, imports, _collect_process_fns(tree), rng_exempt)
    visitor.visit(tree)
    table = _suppressions(source)
    out: List[Finding] = []
    for f in sorted(visitor.findings, key=lambda f: (f.line, f.col, f.code)):
        if _is_suppressed(f.line, f.code, table):
            if keep_suppressed:
                out.append(Finding(f.path, f.line, f.col, f.code, f.message,
                                   suppressed=True))
        else:
            out.append(f)
    return out


def lint_file(path: object, keep_suppressed: bool = False) -> List[Finding]:
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p),
                       keep_suppressed=keep_suppressed)


def iter_python_files(paths: Sequence) -> List[Path]:
    files: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    return files


#: Named rule profiles: preset ``--ignore`` sets for non-product code.
#: ``bench`` relaxes the wall-clock rule (benchmark harnesses time
#: things); ``tests`` relaxes exact-float asserts on hand-built integral
#: schedules and the cohort-race family (test fixtures build deliberate
#: races and single-shot mini-sims).
PROFILES: Dict[str, frozenset] = {
    "default": frozenset(),
    "bench": frozenset({"DET101"}),
    "tests": frozenset({"DET104", "RACE201", "RACE202", "RACE203",
                        "RACE204", "RACE205", "RACE206"}),
}


def lint_paths(paths: Sequence, keep_suppressed: bool = False,
               races: bool = True) -> Tuple[List[Finding], int]:
    """Lint files/directories; returns (findings, files scanned).

    Runs the per-file DET pass and (unless *races* is false) the
    whole-tree RACE analysis, which needs every module at once to
    resolve cross-module helper chains and co-run scopes.
    """
    files = iter_python_files(paths)
    findings: List[Finding] = []
    sources: List[Tuple[str, str]] = []
    for f in files:
        src = Path(f).read_text(encoding="utf-8")
        sources.append((str(f), src))
        findings.extend(lint_source(src, str(f),
                                    keep_suppressed=keep_suppressed))
    if races:
        from repro.analysis.races import analyze_modules

        findings.extend(analyze_modules(sources,
                                        keep_suppressed=keep_suppressed))
    return findings, len(files)


def render_text(findings: List[Finding], files_scanned: int) -> str:
    lines = [f.render() for f in findings]
    active = sum(1 for f in findings if not f.suppressed)
    lines.append(f"{active} finding(s) in {files_scanned} file(s)")
    return "\n".join(lines)


def render_json(findings: List[Finding], files_scanned: int) -> str:
    counts: Dict[str, int] = {}
    for f in findings:
        if not f.suppressed:
            counts[f.code] = counts.get(f.code, 0) + 1
    return json.dumps({
        "findings": [asdict(f) for f in findings],
        "counts": counts,
        "files_scanned": files_scanned,
    }, indent=2, sort_keys=True)


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    ap = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism linter for the simulator codebase")
    ap.add_argument("paths", nargs="*", default=["src/repro"],
                    help="files or directories (default: src/repro)")
    ap.add_argument("--format", choices=("text", "json"), default="text")
    ap.add_argument("--select", nargs="+", metavar="CODE", default=None,
                    help="only report these rule codes")
    ap.add_argument("--ignore", nargs="+", metavar="CODE", default=None,
                    help="drop these rule codes")
    ap.add_argument("--no-suppress", action="store_true",
                    help="report suppressed findings too (marked)")
    ap.add_argument("--profile", choices=sorted(PROFILES),
                    default="default",
                    help="named ignore preset: 'bench' relaxes wall-"
                         "clock, 'tests' relaxes exact-float asserts "
                         "and the race family (default: %(default)s)")
    ap.add_argument("--no-races", action="store_true",
                    help="skip the whole-tree RACE2xx analysis")
    ap.add_argument("--rules", action="store_true",
                    help="print the rule catalog and exit")
    args = ap.parse_args(argv)

    from repro.analysis.races import RACE_RULES

    catalog = {**RULES, **RACE_RULES}
    if args.rules:
        for code in sorted(catalog):
            print(f"{code}  {catalog[code]}")
        return 0

    for codes in (args.select, args.ignore):
        for c in codes or ():
            if c.upper() not in catalog:
                print(f"unknown rule code {c!r}", file=sys.stderr)
                return 2

    try:
        findings, n_files = lint_paths(args.paths,
                                       keep_suppressed=args.no_suppress,
                                       races=not args.no_races)
    except (OSError, SyntaxError) as exc:
        print(f"lint error: {exc}", file=sys.stderr)
        return 2
    if args.select:
        sel = {c.upper() for c in args.select}
        findings = [f for f in findings if f.code in sel]
    ign = set(PROFILES[args.profile])
    if args.ignore:
        ign |= {c.upper() for c in args.ignore}
    if ign:
        findings = [f for f in findings if f.code not in ign]

    if args.format == "json":
        print(render_json(findings, n_files))
    else:
        print(render_text(findings, n_files))
    return 1 if any(not f.suppressed for f in findings) else 0
