"""Correctness tooling for the simulator: static linter + runtime sanitizer.

The reproduction's claims are *traces*: every figure is regenerated from
a deterministic discrete-event simulation, and every OOM row is byte
accounting in :mod:`repro.memory`.  This package holds the two tools
that enforce the disciplines those results rest on:

* :mod:`repro.analysis.linter` — an AST-based **determinism linter**
  (``python -m repro.lint``) with sim-specific rules: no wall-clock or
  global RNG outside ``simcore.rand``, no unordered iteration feeding
  the event scheduler, no float equality on simulated timestamps, no
  broad excepts that can swallow ``SimulationError``, no mutable
  default arguments, and no statically-non-event yields inside process
  generators.

* :mod:`repro.analysis.sanitizer` — :class:`SimSanitizer`, an opt-in
  **runtime sanitizer** (zero-cost when disabled) that audits event
  scheduling, digests the executed trace for run-twice replay diffs,
  detects pinned-memory leaks by tag at epoch boundaries, and runs
  structural invariant checks on registered data structures
  (``PageCache``, ``FeatureBuffer``, queues, rings).

* :mod:`repro.analysis.races` — an interprocedural **static race
  analysis** (RACE201-RACE206) over process generators: per-segment
  shared-state access maps between yields, flagging intra-cohort
  write-write / read-write pairs with no distinguishing priority.
  Rides the linter's reporting machinery; annotate deliberate
  orderings with ``# sim-race: ordered -- why``.

* :mod:`repro.analysis.dynraces` — :class:`RaceDetector`, the
  **runtime prong**: per-method access recording on registered shared
  objects keyed by cohort, plus a wait-for graph over ``Store`` /
  ``Resource`` blocking that dumps deadlock cycles.  Armed via
  ``MachineSpec(sanitize=True, sanitize_races=True)``; observer-only,
  so trace digests are bit-identical either way.
"""

from repro.analysis.linter import (
    Finding,
    PROFILES,
    RULES,
    lint_file,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.analysis.races import RACE_RULES, analyze_modules, analyze_paths
from repro.analysis.dynraces import DEFAULT_WAIVERS, RaceDetector, RaceEvent
from repro.analysis.sanitizer import SanitizerFinding, SimSanitizer

__all__ = [
    "Finding",
    "PROFILES",
    "RULES",
    "RACE_RULES",
    "analyze_modules",
    "analyze_paths",
    "DEFAULT_WAIVERS",
    "RaceDetector",
    "RaceEvent",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "SanitizerFinding",
    "SimSanitizer",
]
