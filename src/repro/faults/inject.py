"""The fault injector and the per-run fault ledger.

The injector is the single authority for "does this request fail / how
slow is it right now": the device, the io_uring model, and the machine's
pressure process all consult it.  It holds one
:class:`~repro.simcore.rand.RandomStreams` family seeded by the plan, so
each fault id draws from its own stream — changing one fault's
consumption never perturbs another, and two runs with the same plan are
bit-identical.

The :class:`FaultLedger` is the observability half: every injection,
retry, recovery, drop, and backoff second is counted here, snapshotted
per epoch into :class:`repro.core.stats.EpochStats` and swept by the
sanitizer's invariant checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.faults.plan import (REPLICA_KINDS, SHARD_KINDS, FaultPlan,
                               FaultSpec)
from repro.faults.recovery import RetryPolicy
from repro.simcore.rand import RandomStreams


class FaultLedger:
    """Counters for injected faults and the recovery work they caused."""

    #: Integer event counters, in reporting order.
    COUNTERS = (
        "injected_read", "injected_ring", "retried", "recovered",
        "dropped", "delayed", "pressure_episodes", "alloc_retries",
        "staging_retries", "sampler_retries", "fb_shrinks", "fb_restores",
        "sync_fallbacks", "depth_halvings",
        # Replica failure domain (PR 8): episode + recovery-plane counters.
        "injected_crash", "injected_hang", "injected_slow",
        "replica_restarts", "failovers", "orphaned", "orphan_failed",
        "hedges", "hedge_wins", "hedge_discards",
        "ejections", "readmissions", "brownouts",
        # Shard failure domain (cluster plane): episode + router counters.
        "injected_shard_down", "injected_shard_slow",
        "shard_redirects", "shard_unavailable",
        "hot_mirrors", "mirror_wins",
    )

    def __init__(self):
        for name in self.COUNTERS:
            setattr(self, name, 0)
        #: Simulated seconds spent sleeping in backoff loops.
        self.backoff_time = 0.0
        #: Simulated seconds of completed memory-pressure episodes.
        self.pressure_time = 0.0
        #: Simulated replica-seconds of completed crash/hang outages.
        self.replica_down_time = 0.0
        #: Simulated seconds the server spent in brownout mode.
        self.brownout_time = 0.0
        #: Simulated shard-seconds of completed shard_down outages.
        self.shard_down_time = 0.0

    @property
    def injected(self) -> int:
        """Total injected errors (read + ring)."""
        return self.injected_read + self.injected_ring

    @property
    def injected_replica(self) -> int:
        """Total injected replica episodes (crash + hang + slow)."""
        return self.injected_crash + self.injected_hang + self.injected_slow

    @property
    def injected_shard(self) -> int:
        """Total injected shard episodes (down + slow)."""
        return self.injected_shard_down + self.injected_shard_slow

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {"injected": self.injected,
                                 "injected_replica": self.injected_replica,
                                 "injected_shard": self.injected_shard}
        for name in self.COUNTERS:
            out[name] = getattr(self, name)
        out["backoff_time"] = self.backoff_time
        out["pressure_time"] = self.pressure_time
        out["replica_down_time"] = self.replica_down_time
        out["brownout_time"] = self.brownout_time
        out["shard_down_time"] = self.shard_down_time
        return out

    def check_invariants(self) -> None:
        """Sanity of the accounting (sanitizer epoch sweep)."""
        for name in self.COUNTERS:
            if getattr(self, name) < 0:
                raise SimulationError(f"negative fault counter {name}")
        if self.backoff_time < 0 or self.pressure_time < 0:
            raise SimulationError("negative fault-ledger time accumulator")
        if self.replica_down_time < 0 or self.brownout_time < 0:
            raise SimulationError("negative fault-ledger time accumulator")
        # Every recovery or drop traces back to an injected error or a
        # retried request; a higher total means double accounting.
        if self.recovered + self.dropped > self.injected + self.retried:
            raise SimulationError(
                f"fault ledger out of balance: recovered {self.recovered} "
                f"+ dropped {self.dropped} exceeds injected "
                f"{self.injected} + retried {self.retried}")
        # Replica balance: every restart traces to a crash episode, every
        # re-admission to an ejection, every hedge win/discard to a
        # launched hedge, and every failover or orphan-drop to an
        # orphaned attempt.
        if self.replica_restarts > self.injected_crash:
            raise SimulationError(
                f"fault ledger out of balance: replica_restarts "
                f"{self.replica_restarts} exceeds injected_crash "
                f"{self.injected_crash}")
        if self.readmissions > self.ejections:
            raise SimulationError(
                f"fault ledger out of balance: readmissions "
                f"{self.readmissions} exceed ejections {self.ejections}")
        if self.hedge_wins + self.hedge_discards > self.hedges:
            raise SimulationError(
                f"fault ledger out of balance: hedge_wins {self.hedge_wins} "
                f"+ hedge_discards {self.hedge_discards} exceed launched "
                f"hedges {self.hedges}")
        if self.failovers + self.orphan_failed > self.orphaned:
            raise SimulationError(
                f"fault ledger out of balance: failovers {self.failovers} "
                f"+ orphan_failed {self.orphan_failed} exceed orphaned "
                f"{self.orphaned}")
        # Shard balance: every mirror win traces to a launched mirror,
        # and every redirect or unavailability drop to a shard_down
        # episode (no outages -> the router never moves or drops work).
        if self.shard_down_time < 0:
            raise SimulationError("negative fault-ledger time accumulator")
        if self.mirror_wins > self.hot_mirrors:
            raise SimulationError(
                f"fault ledger out of balance: mirror_wins "
                f"{self.mirror_wins} exceed launched hot_mirrors "
                f"{self.hot_mirrors}")
        if (self.shard_redirects or self.shard_unavailable) \
                and not self.injected_shard_down:
            raise SimulationError(
                f"fault ledger out of balance: shard_redirects "
                f"{self.shard_redirects} / shard_unavailable "
                f"{self.shard_unavailable} without any injected "
                f"shard_down episode")


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against individual requests.

    Engine-free by design: callers pass the current sim-time (or
    per-request time arrays) explicitly, so the injector never touches
    the event heap and cannot perturb scheduling on its own.
    """

    def __init__(self, plan: FaultPlan,
                 retry_policy: Optional[RetryPolicy] = None):
        self.plan = plan
        self.streams = RandomStreams(plan.seed)
        self.ledger = FaultLedger()
        self.retry_policy = retry_policy or RetryPolicy()
        self._timing: List[FaultSpec] = [
            s for s in plan.specs if s.kind in ("tail_latency", "throttle")]
        self._read_err: List[FaultSpec] = [
            s for s in plan.specs if s.kind == "read_error"]
        self._ring_err: List[FaultSpec] = [
            s for s in plan.specs if s.kind == "ring_error"]
        self.pressure_specs: List[FaultSpec] = [
            s for s in plan.specs if s.kind == "mem_pressure"]
        self.replica_specs: List[FaultSpec] = [
            s for s in plan.specs if s.kind in REPLICA_KINDS]
        self.shard_specs: List[FaultSpec] = [
            s for s in plan.specs if s.kind in SHARD_KINDS]

    # ------------------------------------------------------------------
    def _rng(self, spec: FaultSpec) -> np.random.Generator:
        return self.streams.get(f"fault:{spec.fault_id}")

    # ------------------------------------------------------------------
    # Replica failure domain.  The serve resilience plane walks each
    # spec's discrete episodes (FaultSpec.episode_start) and asks the
    # injector — the sole owner of the per-fault streams — whether the
    # episode fires and which replica it targets.  Draws are consumed in
    # episode order per spec, so plans replay bit-for-bit.

    def draw_episode(self, spec: FaultSpec) -> bool:
        """Whether this episode of *spec* fires (per-fault stream)."""
        if spec.probability >= 1.0:
            return True
        return bool(self._rng(spec).random() < spec.probability)

    def draw_replica(self, spec: FaultSpec, num_replicas: int) -> int:
        """Target replica for an episode of *spec*.

        Pinned specs (``replica >= 0``) return the pinned index modulo
        the replica count (so a single-replica server still exercises
        the plan); ``replica == -1`` draws uniformly from the fault's
        own stream.
        """
        if num_replicas <= 0:
            raise SimulationError("draw_replica needs at least one replica")
        if spec.replica >= 0:
            return spec.replica % num_replicas
        return int(self._rng(spec).integers(0, num_replicas))

    def draw_shard(self, spec: FaultSpec, num_shards: int) -> int:
        """Target shard for an episode of *spec* (cluster plane).

        Mirrors :meth:`draw_replica`: pinned specs return the pinned
        index modulo the shard count; ``shard == -1`` draws uniformly
        from the fault's own stream.
        """
        if num_shards <= 0:
            raise SimulationError("draw_shard needs at least one shard")
        if spec.shard >= 0:
            return spec.shard % num_shards
        return int(self._rng(spec).integers(0, num_shards))

    # ------------------------------------------------------------------
    def service_multipliers(self, times: np.ndarray,
                            write: bool = False) -> Optional[np.ndarray]:
        """Per-request service-time multipliers for requests becoming
        ready at *times*, or None when no timing fault is active.

        Windows are evaluated at each request's ready time — a request
        queued *into* an episode from outside is charged at its ready
        time's rate (a deliberate, documented approximation that keeps
        the batch completion pass closed-form).
        """
        del write  # timing faults hit reads and writes alike
        mult: Optional[np.ndarray] = None
        for spec in self._timing:
            mask = spec.active_mask(times)
            hit = int(mask.sum())
            if hit:
                if mult is None:
                    mult = np.ones(len(times), dtype=np.float64)
                mult[mask] *= spec.factor
                self.ledger.delayed += hit
        return mult

    def draw_read_errors(self, n: int, now: float,
                         handle_name: Optional[str] = None,
                         offsets: Optional[np.ndarray] = None,
                         times: Optional[np.ndarray] = None
                         ) -> Optional[np.ndarray]:
        """Failure mask over *n* read requests issued at *now*.

        Returns None when no read-error fault matches (so the no-fault
        path stays allocation-free).  File- and range-targeted specs
        need the caller to supply ``handle_name`` / byte ``offsets``;
        callers that cannot attribute requests to files (pure
        timing-plane bursts) are only exposed to untargeted specs.
        *times* (per-request submission times) makes windowed specs
        apply per request instead of at the scalar *now* — the device's
        retry loop uses it so backed-off resubmissions can escape an
        error burst.
        """
        fail: Optional[np.ndarray] = None
        for spec in self._read_err:
            if times is None:
                if not spec.active(now):
                    continue
                window = None
            else:
                window = spec.active_mask(times)
                if not window.any():
                    continue
            if spec.file is not None and spec.file != handle_name:
                continue
            if spec.range_start >= 0 and offsets is None:
                continue
            mask = self._rng(spec).random(n) < spec.probability
            if window is not None:
                mask &= window
            if spec.range_start >= 0:
                offs = np.asarray(offsets, dtype=np.int64)
                mask &= (offs >= spec.range_start) & (offs < spec.range_end)
            if mask.any():
                fail = mask if fail is None else (fail | mask)
        if fail is not None:
            self.ledger.injected_read += int(fail.sum())
        return fail

    def draw_ring_errors(self, n: int, now: float) -> Optional[np.ndarray]:
        """Transient CQE-failure mask over *n* in-flight requests."""
        fail: Optional[np.ndarray] = None
        for spec in self._ring_err:
            if not spec.active(now):
                continue
            mask = self._rng(spec).random(n) < spec.probability
            if mask.any():
                fail = mask if fail is None else (fail | mask)
        if fail is not None:
            self.ledger.injected_ring += int(fail.sum())
        return fail
