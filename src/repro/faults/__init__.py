"""Deterministic fault injection and recovery policies (chaos plane).

Public surface::

    from repro.faults import (FaultSpec, FaultPlan, FaultInjector,
                              FaultLedger, RetryPolicy, load_plan,
                              default_chaos_plan)

Configure a machine with ``MachineSpec(faults=plan)`` (or
``repro run --faults plan.json``); every draw is keyed by (plan seed,
fault id), so chaos runs replay bit-for-bit.
"""

from repro.faults.inject import FaultInjector, FaultLedger
from repro.faults.plan import (
    EAGAIN,
    EIO,
    EMPTY_PLAN,
    FAULT_KINDS,
    REPLICA_KINDS,
    SHARD_KINDS,
    FaultPlan,
    FaultSpec,
    default_chaos_plan,
    default_replica_chaos_plan,
    default_shard_chaos_plan,
    load_plan,
)
from repro.faults.recovery import HedgePolicy, RetryPolicy, alloc_with_retry

__all__ = [
    "EAGAIN",
    "EIO",
    "EMPTY_PLAN",
    "FAULT_KINDS",
    "REPLICA_KINDS",
    "SHARD_KINDS",
    "FaultInjector",
    "FaultLedger",
    "FaultPlan",
    "FaultSpec",
    "HedgePolicy",
    "RetryPolicy",
    "alloc_with_retry",
    "default_chaos_plan",
    "default_replica_chaos_plan",
    "default_shard_chaos_plan",
    "load_plan",
]
