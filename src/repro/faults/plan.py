"""Composable fault plans: what goes wrong, when, and how badly.

A :class:`FaultPlan` is an immutable bundle of :class:`FaultSpec`\\ s plus
a seed.  Every stochastic draw the injector makes comes from a
:class:`repro.simcore.RandomStreams` stream keyed by ``(plan seed,
fault id)``, so a (plan, machine, workload) triple always reproduces the
identical fault trace — chaos runs are replayable bit-for-bit.

Fault taxonomy (``FaultSpec.kind``):

``read_error``
    Per-request SSD read failures (media errors).  Probabilistic via
    ``probability``; optionally targeted at one file (``file``) and a
    byte range (``range_start``/``range_end``) to model a bad LBA span.
``tail_latency``
    Service-time inflation (``factor``) over a sim-time window — the
    long-tail episodes SATA devices exhibit under GC.
``throttle``
    Bandwidth degradation (``factor``) over a window — thermal
    throttling.  Mechanically identical to ``tail_latency`` but kept
    separate so plans and ledgers stay readable.
``ring_error``
    Transient io_uring completion errors (CQE ``res`` = -EAGAIN):
    the request's data is not delivered and must be resubmitted.
``mem_pressure``
    A host-memory pressure episode: an external consumer transiently
    claims ``fraction`` of host capacity (or ``nbytes``), shrinking the
    page-cache budget and making pinned allocation fail transiently.
``replica_crash``
    A serve replica dies at the window start: its in-flight extraction
    state is destroyed, queued jobs are orphaned (rescued by failover),
    and the replica restarts cold after ``duration`` simulated seconds
    (then re-admits through health-checker probation).
``replica_hang``
    A serve replica freezes for ``duration``: it stops responding to
    health probes and makes no progress, but keeps its jobs; on resume
    it reprocesses them (hedged requests cover the stall's tail).
``replica_slow``
    A serve replica degrades: its compute times are multiplied by
    ``factor`` over the window (brownout-grade degradation without
    losing state).

The three ``replica_*`` kinds target one replica via ``replica`` (or
draw one uniformly per episode when ``replica`` is -1) and fire each
periodic episode with ``probability``; they are consumed by the serving
resilience plane (:mod:`repro.serve.resilience`), not by the storage
stack — a training machine ignores them.

``shard_down``
    A whole cluster shard (one simulated machine of the serving
    cluster, :mod:`repro.cluster`) goes dark for ``duration``: its
    queued work and the traffic arriving during the outage are
    redirected to the consistent-hash ring successors holding the
    replica copies.  With replication factor 1 the shard's keys are
    simply unreachable and the affected requests fail.
``shard_slow``
    A cluster shard degrades: its batch service times are multiplied
    by ``factor`` over the window (a brownout-grade slow machine that
    keeps serving).

The two ``shard_*`` kinds target one shard via ``shard`` (or draw one
uniformly per episode when ``shard`` is -1); they are consumed by the
cluster router (:mod:`repro.cluster.sim`) — single-machine serving and
training ignore them.

Windows: ``start``/``duration`` define one episode; ``period > 0``
repeats it every period (bounded by ``repeats``; 0 = unbounded).
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigError

#: Recognised fault kinds.
FAULT_KINDS = ("read_error", "tail_latency", "throttle", "ring_error",
               "mem_pressure", "replica_crash", "replica_hang",
               "replica_slow", "shard_down", "shard_slow")

#: The replica failure-domain kinds (serving plane).
REPLICA_KINDS = ("replica_crash", "replica_hang", "replica_slow")

#: The shard failure-domain kinds (cluster plane).
SHARD_KINDS = ("shard_down", "shard_slow")

#: CQE status codes (negated errno, like the real io_uring ABI).
EIO = 5
EAGAIN = 11


@dataclass(frozen=True)
class FaultSpec:
    """One fault source; see the module docstring for the taxonomy."""

    fault_id: str
    kind: str
    #: Per-request error probability (error kinds).  Defaults to 1 so a
    #: file/range-targeted spec fails every matching request.
    probability: float = 1.0
    #: Latency/bandwidth multiplier (timing kinds).
    factor: float = 1.0
    #: Episode window, in simulated seconds.
    start: float = 0.0
    duration: float = math.inf
    #: Episode repetition: 0 = one-shot window, > 0 = repeat every period.
    period: float = 0.0
    #: Bound on periodic repetitions (0 = unbounded, mask-based kinds only).
    repeats: int = 0
    #: ``mem_pressure`` sizing: fraction of host capacity, or absolute bytes.
    fraction: float = 0.0
    nbytes: int = 0
    #: ``read_error`` targeting: file name and byte range (-1 = whole file).
    file: Optional[str] = None
    range_start: int = -1
    range_end: int = -1
    #: ``replica_*`` targeting: replica index (-1 = drawn uniformly from
    #: the serving replicas at each episode, from the fault's stream).
    replica: int = -1
    #: ``shard_*`` targeting: cluster shard index (-1 = drawn uniformly
    #: from the cluster's shards at each episode, from the fault's stream).
    shard: int = -1

    def __post_init__(self):
        if not self.fault_id or not isinstance(self.fault_id, str):
            raise ConfigError("fault_id must be a non-empty string")
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"fault {self.fault_id!r}: unknown kind {self.kind!r}; "
                f"known: {FAULT_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"fault {self.fault_id!r}: probability must be in [0, 1], "
                f"got {self.probability!r}")
        if not self.factor > 0 or math.isnan(self.factor):
            raise ConfigError(
                f"fault {self.fault_id!r}: factor must be positive, "
                f"got {self.factor!r}")
        if self.start < 0 or math.isnan(self.start):
            raise ConfigError(
                f"fault {self.fault_id!r}: start must be >= 0, "
                f"got {self.start!r}")
        if not self.duration > 0 or math.isnan(self.duration):
            raise ConfigError(
                f"fault {self.fault_id!r}: duration must be positive, "
                f"got {self.duration!r}")
        if self.period < 0 or math.isnan(self.period):
            raise ConfigError(
                f"fault {self.fault_id!r}: period must be >= 0, "
                f"got {self.period!r}")
        if self.period > 0 and not self.duration <= self.period:
            raise ConfigError(
                f"fault {self.fault_id!r}: a periodic window needs "
                f"duration <= period ({self.duration!r} > {self.period!r})")
        if self.repeats < 0:
            raise ConfigError(
                f"fault {self.fault_id!r}: repeats must be >= 0")
        if self.kind == "mem_pressure":
            if math.isinf(self.duration):
                raise ConfigError(
                    f"fault {self.fault_id!r}: mem_pressure needs a "
                    "finite duration")
            sized = (self.fraction > 0) + (self.nbytes > 0)
            if sized != 1:
                raise ConfigError(
                    f"fault {self.fault_id!r}: mem_pressure needs exactly "
                    "one of fraction or nbytes")
            if self.fraction and not self.fraction < 1.0:
                raise ConfigError(
                    f"fault {self.fault_id!r}: fraction must be < 1")
        if (self.range_start >= 0) != (self.range_end >= 0):
            raise ConfigError(
                f"fault {self.fault_id!r}: range_start and range_end "
                "must be given together")
        if self.range_start >= 0:
            if self.kind != "read_error":
                raise ConfigError(
                    f"fault {self.fault_id!r}: byte ranges apply to "
                    "read_error faults only")
            if self.range_end <= self.range_start:
                raise ConfigError(
                    f"fault {self.fault_id!r}: empty byte range "
                    f"[{self.range_start}, {self.range_end})")
        if self.file is not None and self.kind != "read_error":
            raise ConfigError(
                f"fault {self.fault_id!r}: file targeting applies to "
                "read_error faults only")
        if self.replica != -1 and self.kind not in REPLICA_KINDS:
            raise ConfigError(
                f"fault {self.fault_id!r}: replica targeting applies to "
                "replica_* faults only")
        if self.kind in REPLICA_KINDS:
            if self.replica < -1:
                raise ConfigError(
                    f"fault {self.fault_id!r}: replica must be >= 0 "
                    f"(or -1 for a drawn target), got {self.replica!r}")
            if math.isinf(self.duration):
                raise ConfigError(
                    f"fault {self.fault_id!r}: {self.kind} needs a "
                    "finite duration (the outage/stall window)")
            if self.kind == "replica_slow" and self.factor <= 1.0:
                raise ConfigError(
                    f"fault {self.fault_id!r}: replica_slow needs "
                    f"factor > 1, got {self.factor!r}")
        if self.shard != -1 and self.kind not in SHARD_KINDS:
            raise ConfigError(
                f"fault {self.fault_id!r}: shard targeting applies to "
                "shard_* faults only")
        if self.kind in SHARD_KINDS:
            if self.shard < -1:
                raise ConfigError(
                    f"fault {self.fault_id!r}: shard must be >= 0 "
                    f"(or -1 for a drawn target), got {self.shard!r}")
            if math.isinf(self.duration):
                raise ConfigError(
                    f"fault {self.fault_id!r}: {self.kind} needs a "
                    "finite duration (the outage/degradation window)")
            if self.kind == "shard_slow" and self.factor <= 1.0:
                raise ConfigError(
                    f"fault {self.fault_id!r}: shard_slow needs "
                    f"factor > 1, got {self.factor!r}")

    # ------------------------------------------------------------------
    def active(self, t: float) -> bool:
        """Is the fault window active at sim-time *t*?"""
        dt = t - self.start
        if dt < 0:
            return False
        if self.period <= 0:
            return dt < self.duration
        k = int(dt // self.period)
        if self.repeats and k >= self.repeats:
            return False
        return dt - k * self.period < self.duration

    def active_mask(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`active` over an array of sim-times."""
        times = np.asarray(times, dtype=np.float64)
        dt = times - self.start
        if self.period <= 0:
            return (dt >= 0) & (dt < self.duration)
        k = np.floor_divide(dt, self.period)
        mask = (dt >= 0) & (dt - k * self.period < self.duration)
        if self.repeats:
            mask &= k < self.repeats
        return mask

    def episode_start(self, k: int) -> Optional[float]:
        """Start time of episode *k* (0-based), or None past the last.

        Non-periodic specs have exactly one episode; the replica chaos
        drivers walk episodes with this instead of evaluating windows,
        since replica faults are discrete events, not rate modifiers.
        """
        if k < 0:
            raise ValueError("episode index must be >= 0")
        if self.period <= 0:
            return self.start if k == 0 else None
        if self.repeats and k >= self.repeats:
            return None
        return self.start + k * self.period


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, hashable set of fault specs plus the draw seed."""

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self):
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))
        seen = set()
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigError(f"not a FaultSpec: {spec!r}")
            if spec.fault_id in seen:
                raise ConfigError(f"duplicate fault id {spec.fault_id!r}")
            seen.add(spec.fault_id)

    @property
    def is_empty(self) -> bool:
        return not self.specs

    @property
    def replica_specs(self) -> Tuple[FaultSpec, ...]:
        """The replica failure-domain specs (serving plane)."""
        return tuple(s for s in self.specs if s.kind in REPLICA_KINDS)

    @property
    def has_replica_faults(self) -> bool:
        """True when any spec targets the replica failure domain."""
        return any(s.kind in REPLICA_KINDS for s in self.specs)

    @property
    def shard_specs(self) -> Tuple[FaultSpec, ...]:
        """The shard failure-domain specs (cluster plane)."""
        return tuple(s for s in self.specs if s.kind in SHARD_KINDS)

    @property
    def has_shard_faults(self) -> bool:
        """True when any spec targets the shard failure domain."""
        return any(s.kind in SHARD_KINDS for s in self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Compact dict form: default-valued spec fields are omitted, so
        saved plans stay hand-editable and strict-JSON (no Infinity)."""
        specs = []
        for s in self.specs:
            fields = FaultSpec.__dataclass_fields__
            d = {k: v for k, v in asdict(s).items()
                 if k in ("fault_id", "kind") or v != fields[k].default}
            specs.append(d)
        return {"seed": self.seed, "specs": specs}

    @staticmethod
    def from_dict(data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ConfigError(f"fault plan must be an object, got "
                              f"{type(data).__name__}")
        unknown = set(data) - {"seed", "specs"}
        if unknown:
            raise ConfigError(f"unknown fault-plan keys: {sorted(unknown)}")
        specs = []
        for i, raw in enumerate(data.get("specs", [])):
            if not isinstance(raw, dict):
                raise ConfigError(f"spec #{i} must be an object")
            raw = dict(raw)
            # Accept 'id' as shorthand for 'fault_id' in hand-written plans.
            if "id" in raw:
                raw.setdefault("fault_id", raw.pop("id"))
            allowed = set(FaultSpec.__dataclass_fields__)
            bad = set(raw) - allowed
            if bad:
                raise ConfigError(
                    f"spec #{i}: unknown field(s) {sorted(bad)}")
            try:
                specs.append(FaultSpec(**raw))
            except TypeError as exc:
                raise ConfigError(f"spec #{i}: {exc}") from exc
        return FaultPlan(tuple(specs), seed=int(data.get("seed", 0)))

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")


def load_plan(path: str) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file (``repro run --faults``)."""
    with open(path) as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{path}: invalid JSON: {exc}") from exc
    return FaultPlan.from_dict(data)


#: The no-faults plan: a machine built with it behaves bit-identically
#: to one built with ``faults=None``.
EMPTY_PLAN = FaultPlan()


def default_chaos_plan(seed: int = 7) -> FaultPlan:
    """The canned chaos plan used by ``python -m repro.bench faults``.

    Windows are sized for the tiny/mini workloads (epochs are tens of
    simulated milliseconds) and recur periodically, so every epoch of
    every system crosses several episodes of each fault class.  The
    background ``media-errors`` rate exercises the high-request-count
    systems; the periodic ``media-burst`` windows catch the
    chunk-oriented ones (MariusGNN issues only a dozen large reads per
    run, so a 1% background rate alone would never touch it).  Burst
    windows are shorter than the retry policy's cumulative backoff, so
    retries escape them and recovery stays the common outcome.
    """
    return FaultPlan((
        FaultSpec("media-errors", "read_error", probability=0.01),
        FaultSpec("media-burst", "read_error", probability=0.9,
                  start=0.004, duration=0.005, period=0.016),
        FaultSpec("cqe-eagain", "ring_error", probability=0.005),
        FaultSpec("gc-tail", "tail_latency", factor=6.0,
                  start=0.002, duration=0.003, period=0.02),
        FaultSpec("thermal-throttle", "throttle", factor=2.5,
                  start=0.01, duration=0.005, period=0.035),
        FaultSpec("noisy-neighbor", "mem_pressure", fraction=0.06,
                  start=0.015, duration=0.004, period=0.045, repeats=400),
    ), seed=seed)


def default_replica_chaos_plan(seed: int = 11) -> FaultPlan:
    """The canned replica-chaos plan used by ``bench chaos_serve``.

    Windows are sized for the tiny serving workloads (a 60-80 request
    run at a few hundred req/s spans ~0.2-0.4 simulated seconds), so a
    run crosses several crash, hang, and slowdown episodes.  Hang
    stalls are several times the hedge delay floor, so hedged requests
    measurably beat the unhedged tail; crash outages are longer than
    the health probation, so restarted replicas genuinely re-admit.
    """
    return FaultPlan((
        FaultSpec("replica-crash", "replica_crash", replica=1,
                  start=0.02, duration=0.015, period=0.09),
        FaultSpec("replica-hang", "replica_hang", replica=0,
                  start=0.045, duration=0.012, period=0.08),
        FaultSpec("replica-slow", "replica_slow", factor=4.0,
                  start=0.01, duration=0.02, period=0.11),
    ), seed=seed)


def default_shard_chaos_plan(seed: int = 13) -> FaultPlan:
    """The canned shard-chaos plan used by ``python -m repro.bench cluster``.

    Windows are sized for the cluster bench workloads (thousands of
    requests at a few thousand req/s span ~0.5-2 simulated seconds), so
    a run crosses several outage and slow-shard episodes.  The outage
    targets shard 0 — under the popularity-ranked hash placement that
    is always a loaded shard, so redirects genuinely move traffic.
    """
    return FaultPlan((
        FaultSpec("shard-outage", "shard_down", shard=0,
                  start=0.08, duration=0.06, period=0.35),
        FaultSpec("shard-degraded", "shard_slow", factor=4.0,
                  start=0.02, duration=0.05, period=0.27),
    ), seed=seed)
