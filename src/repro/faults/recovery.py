"""Retry policies and backoff helpers shared by every recovery path.

All recovery in the runtime is bounded: a per-request retry budget plus
exponential backoff with a cap.  Policies are plain data so the device's
analytic retry loop, the extractor's event-driven loop, and the
allocation helpers all degrade the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import ConfigError, OutOfMemoryError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: ``delay(i) = min(cap, base * g**i)``."""

    max_retries: int = 6
    backoff_base: float = 200e-6
    backoff_factor: float = 2.0
    backoff_cap: float = 5e-3

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base <= 0:
            raise ConfigError("backoff_base must be positive")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.backoff_cap < self.backoff_base:
            raise ConfigError("backoff_cap must be >= backoff_base")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number *attempt* (0-based)."""
        return min(self.backoff_cap,
                   self.backoff_base * self.backoff_factor ** attempt)

    def total_backoff(self) -> float:
        """Worst-case cumulative backoff across the whole budget."""
        return sum(self.delay(i) for i in range(self.max_retries))


@dataclass(frozen=True)
class HedgePolicy:
    """Hedged-request policy for the serving resilience plane.

    After a request has waited ``max(min_delay, quantile(latency))``
    without completing, a second attempt is launched on another healthy
    replica; the first completion wins and the loser is cancelled.  The
    delay floor keeps cold-start runs (empty latency history) from
    hedging every request.
    """

    quantile: float = 0.95
    min_delay: float = 2e-3
    max_hedges: int = 1

    def __post_init__(self):
        if not 0.0 < self.quantile < 1.0:
            raise ConfigError("hedge quantile must be in (0, 1)")
        if self.min_delay <= 0:
            raise ConfigError("hedge min_delay must be positive")
        if self.max_hedges < 0:
            raise ConfigError("max_hedges must be >= 0")

    def delay(self, observed_quantile: Optional[float]) -> float:
        """Hedge delay given the currently observed latency quantile."""
        if observed_quantile is None:
            return self.min_delay
        return max(self.min_delay, observed_quantile)


def reserve_staging_with_backoff(machine, staging, nodes: int,
                                 portion: int = 0) -> Generator:
    """Staging reservation with bounded backoff under fault plans.

    Use as ``yield from reserve_staging_with_backoff(m, staging, n, p)``
    inside a process.  Without a plan (or once the budget is exhausted)
    the :class:`~repro.errors.OutOfMemoryError` propagates unchanged.
    Shared by the GNNDrive extractors and the serving async backend.
    """
    inj = machine.faults
    attempt = 0
    while True:
        try:
            staging.reserve(nodes, portion)
            return
        except OutOfMemoryError:
            if inj is None or attempt >= inj.retry_policy.max_retries:
                raise
            delay = inj.retry_policy.delay(attempt)
            attempt += 1
            inj.ledger.staging_retries += 1
            inj.ledger.backoff_time += delay
            yield machine.sim.timeout(delay)


def recover_failed_reads(machine, ring, handle, ssd_nodes, t_load, res,
                         io_size: int, record_nbytes: int) -> Generator:
    """Event-driven retry of ring reads whose CQEs came back failed.

    The degradation ladder: bounded backoff + resubmission; after two
    consecutive all-failing rounds the ring depth is halved
    (sustained-failure hypothesis: a shallower ring sheds pressure);
    when the retry budget runs out, one last synchronous pass at depth
    1; whatever still fails is dropped (the caller zero-fills those
    rows).  Returns ``(completion_times, dropped_node_ids)``.  Shared
    by the GNNDrive extractors and the serving async backend; never
    entered without an active fault plan.
    """
    import numpy as np

    inj = machine.faults
    policy = inj.retry_policy
    ledger = inj.ledger
    t_final = t_load.copy()
    failed_idx = np.flatnonzero(res < 0)
    initial = len(failed_idx)
    fail_rounds = 0
    attempt = 0
    while len(failed_idx) and attempt < policy.max_retries:
        delay = policy.delay(attempt)
        ledger.retried += len(failed_idx)
        ledger.backoff_time += delay
        yield machine.sim.timeout(delay)
        ring.prepare_record_reads(handle, ssd_nodes[failed_idx],
                                  io_size=io_size)
        rt = ring.submit()
        t_final[failed_idx] = rt
        rres = ring.last_res
        still = rres < 0 if rres is not None else None
        if still is None or not still.any():
            failed_idx = failed_idx[:0]
            break
        failed_idx = failed_idx[still]
        fail_rounds += 1
        if fail_rounds >= 2 and ring.depth > 1:
            ring.depth = max(1, ring.depth // 2)
            ledger.depth_halvings += 1
            fail_rounds = 0
        attempt += 1
    dropped_nodes = np.empty(0, dtype=np.int64)
    if len(failed_idx):
        # Sync fallback: one final depth-1 pass through the device's
        # own retry machinery before giving a request up for good.
        sizes = np.full(len(failed_idx), io_size, dtype=np.int64)
        done, dropped = machine.ssd.submit_reliable(
            sizes, io_depth=1, handle_name=handle.name,
            offsets=ssd_nodes[failed_idx] * record_nbytes)
        ledger.sync_fallbacks += 1
        t_final[failed_idx] = done
        yield machine.sim.timeout(max(0.0, float(done.max())
                                      - machine.sim.now))
        dropped_nodes = ssd_nodes[failed_idx][dropped]
        failed_idx = failed_idx[dropped]
    ledger.recovered += initial - len(failed_idx)
    ledger.dropped += len(failed_idx)
    return t_final, dropped_nodes


def alloc_with_retry(machine, nbytes: int, tag: str,
                     policy: Optional[RetryPolicy] = None) -> Generator:
    """Pinned host allocation with bounded backoff under fault pressure.

    Use as ``alloc = yield from alloc_with_retry(m, nbytes, tag)`` inside
    a process.  Without an active fault plan (or once the retry budget is
    exhausted) the :class:`~repro.errors.OutOfMemoryError` propagates —
    transient pressure is survivable, genuine over-commit is not.
    """
    inj = machine.faults
    if policy is None:
        policy = inj.retry_policy if inj is not None else RetryPolicy()
    attempt = 0
    while True:
        try:
            return machine.host.allocate(nbytes, tag=tag)
        except OutOfMemoryError:
            if inj is None or attempt >= policy.max_retries:
                raise
            delay = policy.delay(attempt)
            attempt += 1
            inj.ledger.alloc_retries += 1
            inj.ledger.backoff_time += delay
            yield machine.sim.timeout(delay)
