"""Retry policies and backoff helpers shared by every recovery path.

All recovery in the runtime is bounded: a per-request retry budget plus
exponential backoff with a cap.  Policies are plain data so the device's
analytic retry loop, the extractor's event-driven loop, and the
allocation helpers all degrade the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import ConfigError, OutOfMemoryError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: ``delay(i) = min(cap, base * g**i)``."""

    max_retries: int = 6
    backoff_base: float = 200e-6
    backoff_factor: float = 2.0
    backoff_cap: float = 5e-3

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base <= 0:
            raise ConfigError("backoff_base must be positive")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.backoff_cap < self.backoff_base:
            raise ConfigError("backoff_cap must be >= backoff_base")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number *attempt* (0-based)."""
        return min(self.backoff_cap,
                   self.backoff_base * self.backoff_factor ** attempt)

    def total_backoff(self) -> float:
        """Worst-case cumulative backoff across the whole budget."""
        return sum(self.delay(i) for i in range(self.max_retries))


def alloc_with_retry(machine, nbytes: int, tag: str,
                     policy: Optional[RetryPolicy] = None) -> Generator:
    """Pinned host allocation with bounded backoff under fault pressure.

    Use as ``alloc = yield from alloc_with_retry(m, nbytes, tag)`` inside
    a process.  Without an active fault plan (or once the retry budget is
    exhausted) the :class:`~repro.errors.OutOfMemoryError` propagates —
    transient pressure is survivable, genuine over-commit is not.
    """
    inj = machine.faults
    if policy is None:
        policy = inj.retry_policy if inj is not None else RetryPolicy()
    attempt = 0
    while True:
        try:
            return machine.host.allocate(nbytes, tag=tag)
        except OutOfMemoryError:
            if inj is None or attempt >= policy.max_retries:
                raise
            delay = policy.delay(attempt)
            attempt += 1
            inj.ledger.alloc_retries += 1
            inj.ledger.backoff_time += delay
            yield machine.sim.timeout(delay)
