"""Alternative sampling policies (§4.4).

"The sampler in GNNDrive supports various sampling policies and
domain-specific node caching methods with high adaptability."  These
policies plug into the same :class:`NeighborSampler` machinery — the
systems only see :class:`SampledSubgraph`, so any policy composes with
any system:

* :class:`WeightedNeighborSampler` — neighbors drawn proportionally to
  arbitrary per-node weights (exact categorical sampling, vectorized
  over variable-length adjacency runs via a global cumulative-weight
  array and ``searchsorted``).
* :class:`DegreeBiasedSampler` — the common importance heuristic:
  weight = (out-degree)^alpha, concentrating the frontier on hubs.
* :func:`cache_biased_weights` — AliGraph-style node caching: boost the
  draw probability of "hot" (cached) nodes so extraction hits the
  cache more often, trading sampling fidelity for I/O.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.csc import CSCGraph
from repro.sampling.neighbor import NeighborSampler


class WeightedNeighborSampler(NeighborSampler):
    """Neighbor draws proportional to per-node weights.

    Parameters
    ----------
    node_weights:
        Strictly positive weight per node; a neighbor *u* of *v* is
        drawn with probability ``w[u] / sum(w[u'] for u' in N(v))``.
    """

    def __init__(self, graph: CSCGraph, fanouts: Sequence[int],
                 rng: np.random.Generator, node_weights: np.ndarray):
        super().__init__(graph, fanouts, rng)
        node_weights = np.asarray(node_weights, dtype=np.float64)
        if node_weights.shape != (graph.num_nodes,):
            raise ValueError("node_weights must have one entry per node")
        if (node_weights <= 0).any():
            raise ValueError("node_weights must be strictly positive")
        self.node_weights = node_weights
        # Global prefix sums of per-edge weights: the cumulative weight
        # inside any adjacency run [s, e) is cum[e] - cum[s].
        edge_w = node_weights[graph.indices]
        self._cum = np.concatenate([[0.0], np.cumsum(edge_w)])

    def _draw(self, active_pos: np.ndarray, starts: np.ndarray,
              ends: np.ndarray, fanout: int) -> np.ndarray:
        s = starts[active_pos]
        e = ends[active_pos]
        base = self._cum[s]
        total = self._cum[e] - base
        u = self.rng.random((len(active_pos), fanout))
        targets = base[:, None] + u * total[:, None]
        # Exact categorical draw: position of the target in the global
        # prefix-sum array, clipped into the run.
        pos = np.searchsorted(self._cum, targets, side="right") - 1
        return np.clip(pos, s[:, None], (e - 1)[:, None])


class DegreeBiasedSampler(WeightedNeighborSampler):
    """Importance sampling toward hubs: weight = (out_degree + 1)^alpha."""

    def __init__(self, graph: CSCGraph, fanouts: Sequence[int],
                 rng: np.random.Generator, alpha: float = 0.75):
        out_deg = np.bincount(graph.indices, minlength=graph.num_nodes)
        weights = (out_deg + 1.0) ** float(alpha)
        super().__init__(graph, fanouts, rng, weights)
        self.alpha = float(alpha)


def cache_biased_weights(graph: CSCGraph, hot_nodes: np.ndarray,
                         boost: float = 4.0) -> np.ndarray:
    """Node weights that prefer a hot (cached) node set.

    Use with :class:`WeightedNeighborSampler` to realise a
    caching-aware policy: sampled frontiers skew toward *hot_nodes*, so
    feature extraction hits whatever cache holds them (GNNDrive's
    feature buffer, Ginex's feature cache, ...).
    """
    if boost <= 0:
        raise ValueError("boost must be positive")
    weights = np.ones(graph.num_nodes, dtype=np.float64)
    weights[np.asarray(hot_nodes, dtype=np.int64)] = boost
    return weights
