"""Sampled-subgraph representation shared by all systems and models.

Layout convention (PyG NeighborSampler style): node sets grow inward,
``N_0`` = seeds, ``N_{l+1}`` = ``N_l`` followed by the new nodes sampled
at hop ``l+1``.  Because each outer set is a *prefix* of the next inner
set, a model layer can read its self-features as ``h_src[:num_dst]``.

``all_nodes`` (the deepest set) is exactly "the sampled node list" that
GNNDrive's samplers enqueue for extraction (§4.1 step 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
import scipy.sparse as sp


@dataclass
class LayerAdj:
    """Bipartite sampled edges for one model layer.

    ``src_pos[e] -> dst_pos[e]`` with positions into the inner (source)
    and outer (destination) node sets; ``N_dst == N_src[:num_dst]``.
    Multi-edges are allowed (uniform sampling with replacement) and act
    as aggregation weights.
    """

    src_pos: np.ndarray
    dst_pos: np.ndarray
    num_src: int
    num_dst: int

    def __post_init__(self):
        if len(self.src_pos) != len(self.dst_pos):
            raise ValueError("src/dst edge arrays differ in length")
        if self.num_dst > self.num_src:
            raise ValueError("dst set must be a prefix of src set")
        if len(self.src_pos):
            if self.src_pos.max() >= self.num_src or self.src_pos.min() < 0:
                raise ValueError("src positions out of range")
            if self.dst_pos.max() >= self.num_dst or self.dst_pos.min() < 0:
                raise ValueError("dst positions out of range")

    @property
    def num_edges(self) -> int:
        return len(self.src_pos)

    def mean_matrix(self) -> sp.csr_matrix:
        """Row-normalised aggregation operator (num_dst x num_src).

        Rows with no sampled in-edges are zero (their self path still
        contributes through the model's self weight).
        """
        deg = np.bincount(self.dst_pos, minlength=self.num_dst).astype(np.float32)
        weights = 1.0 / np.maximum(deg[self.dst_pos], 1.0)
        return sp.csr_matrix(
            (weights, (self.dst_pos, self.src_pos)),
            shape=(self.num_dst, self.num_src),
        )

    def sum_matrix(self) -> sp.csr_matrix:
        """Unnormalised aggregation operator (num_dst x num_src)."""
        weights = np.ones(len(self.src_pos), dtype=np.float32)
        return sp.csr_matrix(
            (weights, (self.dst_pos, self.src_pos)),
            shape=(self.num_dst, self.num_src),
        )

    def gcn_matrix(self) -> sp.csr_matrix:
        """Symmetric-normalised GCN operator with implicit self-loops.

        Uses sampled degrees: weight(u->v) = 1/sqrt((d_v+1)(d_u_out+1)),
        plus a self-loop of 1/(d_v+1) on the prefix nodes.
        """
        d_dst = np.bincount(self.dst_pos, minlength=self.num_dst).astype(np.float32)
        d_src_out = np.bincount(self.src_pos, minlength=self.num_src).astype(np.float32)
        w = 1.0 / np.sqrt((d_dst[self.dst_pos] + 1.0)
                          * (d_src_out[self.src_pos] + 1.0))
        rows = np.concatenate([self.dst_pos,
                               np.arange(self.num_dst, dtype=np.int64)])
        cols = np.concatenate([self.src_pos,
                               np.arange(self.num_dst, dtype=np.int64)])
        vals = np.concatenate([w, 1.0 / (d_dst + 1.0)]).astype(np.float32)
        return sp.csr_matrix((vals, (rows, cols)),
                             shape=(self.num_dst, self.num_src))


@dataclass
class SampledSubgraph:
    """A mini-batch's sampled computation graph.

    Attributes
    ----------
    seeds:
        Global node ids of the training targets (== ``all_nodes[:len]``).
    all_nodes:
        Global ids of every node whose features the batch needs (the
        extraction list), deepest layer's set.
    layers:
        ``layers[0]`` is the *innermost* hop (consumed first in the
        forward pass); ``layers[-1]`` produces the seed embeddings.
    hop_frontiers:
        Node ids expanded at each hop (for the sampler's topology-I/O
        accounting): ``hop_frontiers[h]`` are the nodes whose adjacency
        lists hop *h* read.
    """

    seeds: np.ndarray
    all_nodes: np.ndarray
    layers: List[LayerAdj]
    hop_frontiers: List[np.ndarray]

    @property
    def batch_size(self) -> int:
        return len(self.seeds)

    @property
    def num_sampled_nodes(self) -> int:
        return len(self.all_nodes)

    def total_edges(self) -> int:
        return sum(l.num_edges for l in self.layers)

    def layer_sizes(self) -> List[Tuple[int, int, int]]:
        """(num_src, num_dst, num_edges) per layer, innermost first —
        the inputs to the compute-cost model."""
        return [(l.num_src, l.num_dst, l.num_edges) for l in self.layers]
