"""Uniform k-hop neighbor sampling over CSC topology, fully vectorized.

For each hop, every frontier node with non-zero in-degree draws ``fanout``
neighbors uniformly *with replacement* (multi-edges act as weights in the
mean aggregation, the standard trick that keeps the sampler allocation-
free).  The paper's default is 3-hop (10, 10, 10) for GraphSAGE/GCN and
(10, 10, 5) for GAT.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.graph.csc import CSCGraph
from repro.sampling.subgraph import LayerAdj, SampledSubgraph


class NeighborSampler:
    """Stateless besides its RNG stream; one instance per sampler thread."""

    def __init__(self, graph: CSCGraph, fanouts: Sequence[int],
                 rng: np.random.Generator):
        if not fanouts or any(f < 1 for f in fanouts):
            raise ValueError(f"fanouts must be positive, got {fanouts}")
        self.graph = graph
        self.fanouts = tuple(int(f) for f in fanouts)
        self.rng = rng

    @property
    def num_hops(self) -> int:
        return len(self.fanouts)

    # ------------------------------------------------------------------
    def _draw(self, active_pos: np.ndarray, starts: np.ndarray,
              ends: np.ndarray, fanout: int) -> np.ndarray:
        """Positions into ``graph.indices`` for the sampled neighbors.

        Uniform with replacement; policy subclasses override this (the
        §4.4 "various sampling policies" hook).
        """
        degs = ends - starts
        offsets = (self.rng.random((len(active_pos), fanout))
                   * degs[active_pos, None]).astype(np.int64)
        return starts[active_pos, None] + offsets

    # ------------------------------------------------------------------
    def sample(self, seeds: np.ndarray) -> SampledSubgraph:
        """Sample the computation graph for one mini-batch of *seeds*."""
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        if len(seeds) == 0:
            raise ValueError("empty seed set")
        graph = self.graph

        node_set = seeds                     # N_0
        layers_rev: List[LayerAdj] = []      # collected outermost-first
        frontiers: List[np.ndarray] = []

        for fanout in self.fanouts:
            frontiers.append(node_set)
            starts, ends = graph.neighbor_slices(node_set)
            degs = ends - starts
            has_nb = degs > 0
            n_active = int(has_nb.sum())

            if n_active:
                active_pos = np.nonzero(has_nb)[0]
                gather = self._draw(active_pos, starts, ends, fanout)
                sampled = graph.indices[gather]            # global ids
                dst_pos = np.repeat(active_pos, fanout)
                src_global = sampled.reshape(-1)
            else:
                dst_pos = np.empty(0, dtype=np.int64)
                src_global = np.empty(0, dtype=np.int64)

            # Inner node set: outer set first (prefix), then new nodes.
            new_nodes = np.setdiff1d(src_global, node_set, assume_unique=False)
            inner = np.concatenate([node_set, new_nodes])
            # Map sampled global ids to positions in `inner`.
            order = np.argsort(inner, kind="stable")
            src_pos = order[np.searchsorted(inner, src_global, sorter=order)]
            layers_rev.append(LayerAdj(
                src_pos=src_pos.astype(np.int64),
                dst_pos=dst_pos.astype(np.int64),
                num_src=len(inner),
                num_dst=len(node_set),
            ))
            node_set = inner

        return SampledSubgraph(
            seeds=seeds,
            all_nodes=node_set,
            layers=list(reversed(layers_rev)),  # innermost first
            hop_frontiers=frontiers,
        )
