"""Sample stage: k-hop neighbor sampling, subgraphs, mini-batching.

The sampler is *pure* (topology in, subgraph out) and fully vectorized;
the timing side (which index pages a hop faults through the OS page
cache) is reported alongside so the system actors can charge I/O without
re-deriving it.
"""

from repro.sampling.subgraph import LayerAdj, SampledSubgraph
from repro.sampling.neighbor import NeighborSampler
from repro.sampling.policies import (
    DegreeBiasedSampler,
    WeightedNeighborSampler,
    cache_biased_weights,
)
from repro.sampling.batching import MinibatchPlan, split_segments

__all__ = [
    "LayerAdj",
    "SampledSubgraph",
    "NeighborSampler",
    "WeightedNeighborSampler",
    "DegreeBiasedSampler",
    "cache_biased_weights",
    "MinibatchPlan",
    "split_segments",
]
