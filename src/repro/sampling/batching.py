"""Mini-batch planning: shuffles, batches, superbatches, segments.

* Plain batches drive PyG+ and GNNDrive.
* *Superbatches* (bundles of ~1500 mini-batches) drive Ginex's
  inspect-then-extract schedule (§2).
* *Segments* split the training set across data-parallel subprocesses for
  multi-GPU GNNDrive (§4.3 — "divides the entire training set into
  segments for subprocesses to execute").
"""

from __future__ import annotations

from typing import List

import numpy as np


class MinibatchPlan:
    """Deterministic epoch-by-epoch mini-batch schedule."""

    def __init__(self, train_idx: np.ndarray, batch_size: int,
                 rng: np.random.Generator, shuffle: bool = True,
                 drop_last: bool = False):
        train_idx = np.asarray(train_idx, dtype=np.int64)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if len(train_idx) == 0:
            raise ValueError("empty training set")
        self.train_idx = train_idx
        self.batch_size = int(batch_size)
        self.rng = rng
        self.shuffle = shuffle
        self.drop_last = drop_last

    @property
    def num_batches(self) -> int:
        n = len(self.train_idx)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def epoch_batches(self) -> List[np.ndarray]:
        """The mini-batches of one epoch (advances the shuffle RNG)."""
        idx = self.train_idx
        if self.shuffle:
            idx = idx[self.rng.permutation(len(idx))]
        out = []
        stop = self.num_batches * self.batch_size if self.drop_last else len(idx)
        for s in range(0, stop, self.batch_size):
            out.append(idx[s:s + self.batch_size])
        return out

    def superbatches(self, superbatch_size: int) -> List[List[np.ndarray]]:
        """Group one epoch's batches into Ginex-style superbatches."""
        if superbatch_size < 1:
            raise ValueError("superbatch_size must be >= 1")
        batches = self.epoch_batches()
        return [batches[s:s + superbatch_size]
                for s in range(0, len(batches), superbatch_size)]


def split_segments(train_idx: np.ndarray, num_segments: int,
                   rng: np.random.Generator) -> List[np.ndarray]:
    """Shuffle then split the training set into near-equal segments."""
    if num_segments < 1:
        raise ValueError("num_segments must be >= 1")
    train_idx = np.asarray(train_idx, dtype=np.int64)
    if num_segments > len(train_idx):
        raise ValueError("more segments than training nodes")
    perm = train_idx[rng.permutation(len(train_idx))]
    return [np.sort(chunk) for chunk in np.array_split(perm, num_segments)]
