"""Builders: edge lists -> CSC, plus the usual graph transforms."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.csc import CSCGraph


def csc_from_edges(src: np.ndarray, dst: np.ndarray, num_nodes: int,
                   dedup: bool = True) -> CSCGraph:
    """Build a CSC adjacency (in-neighbors per column) from directed edges.

    Parameters
    ----------
    src, dst:
        Edge endpoint arrays (edge ``src[i] -> dst[i]``).
    num_nodes:
        Total node count (isolated nodes allowed).
    dedup:
        Drop duplicate (src, dst) pairs, as dataset preprocessing does.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape or src.ndim != 1:
        raise ValueError("src and dst must be 1-D arrays of equal length")
    if len(src) and (min(src.min(), dst.min()) < 0
                     or max(src.max(), dst.max()) >= num_nodes):
        raise ValueError("edge endpoints out of range")

    if dedup and len(src):
        key = dst * num_nodes + src
        _, keep = np.unique(key, return_index=True)
        src, dst = src[keep], dst[keep]

    # Sort by destination so each column's in-neighbors are contiguous.
    order = np.argsort(dst, kind="stable")
    src, dst = src[order], dst[order]
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.add.at(indptr, dst + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSCGraph(indptr, src)


def make_undirected(src: np.ndarray, dst: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Mirror every edge (social graphs like Twitter/Friendster)."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    return np.concatenate([src, dst]), np.concatenate([dst, src])


def add_self_loops(src: np.ndarray, dst: np.ndarray,
                   num_nodes: int) -> Tuple[np.ndarray, np.ndarray]:
    """Append i->i for every node (GCN normalisation expects them)."""
    loops = np.arange(num_nodes, dtype=np.int64)
    return (np.concatenate([np.asarray(src, dtype=np.int64), loops]),
            np.concatenate([np.asarray(dst, dtype=np.int64), loops]))
