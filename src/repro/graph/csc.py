"""CSC adjacency matrix: the topology format every system samples from.

For node ``v``, its in-neighbors are ``indices[indptr[v]:indptr[v+1]]``.
The paper keeps ``indptr`` in host memory (< 1 GB even at full scale) and
stores ``indices`` on the SSD; samplers fault index pages through the OS
page cache.  :class:`CSCGraph` is the in-memory view used by the data
plane; the on-SSD placement is handled by the dataset bundle.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class CSCGraph:
    """Immutable CSC topology with vectorized neighbor queries."""

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 num_nodes: int | None = None):
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D")
        if len(indptr) < 1:
            raise ValueError("indptr must have at least one entry")
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = len(indptr) - 1
        if num_nodes is not None and num_nodes != n:
            raise ValueError(f"num_nodes={num_nodes} but indptr implies {n}")
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("indices refer to out-of-range nodes")
        self.indptr = indptr
        self.indices = indices

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def in_degree(self, nodes: np.ndarray | None = None) -> np.ndarray:
        """In-degree per node (all nodes if *nodes* is None)."""
        deg = np.diff(self.indptr)
        return deg if nodes is None else deg[np.asarray(nodes, dtype=np.int64)]

    def neighbors(self, v: int) -> np.ndarray:
        """In-neighbors of one node (a view, do not mutate)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    # ------------------------------------------------------------------
    def neighbor_slices(self, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(start, end) index ranges into ``indices`` for each node."""
        nodes = np.asarray(nodes, dtype=np.int64)
        return self.indptr[nodes], self.indptr[nodes + 1]

    def touched_index_bytes(self, nodes: np.ndarray, itemsize: int = 8) -> np.ndarray:
        """Byte ranges of ``indices`` read when expanding *nodes*.

        Returns an (n, 2) array of [start_byte, end_byte) per node — the
        timing plane uses this to charge page faults for sampling.
        """
        starts, ends = self.neighbor_slices(nodes)
        return np.stack([starts * itemsize, ends * itemsize], axis=1)

    def gather_neighbors(self, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """All in-neighbors of *nodes*, concatenated.

        Returns ``(flat_neighbors, counts)`` where ``counts[i]`` is the
        degree of ``nodes[i]``.  Fully vectorized (no per-node Python
        loop): builds one big gather index from the CSC slices.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        starts, ends = self.neighbor_slices(nodes)
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), counts
        # Offsets of each node's run inside the output.
        out_offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        # flat[i] = indices[starts[run(i)] + (i - out_offsets[run(i)])]
        idx = np.arange(total, dtype=np.int64)
        run = np.repeat(np.arange(len(nodes)), counts)
        gather = starts[run] + (idx - out_offsets[run])
        return self.indices[gather], counts

    # ------------------------------------------------------------------
    def to_scipy(self):
        """The adjacency as a ``scipy.sparse.csc_matrix`` (A[u, v]=1 for
        edge u->v, column v lists in-neighbors)."""
        from scipy.sparse import csc_matrix
        data = np.ones(self.num_edges, dtype=np.float32)
        return csc_matrix((data, self.indices, self.indptr),
                          shape=(self.num_nodes, self.num_nodes))

    def __repr__(self) -> str:  # pragma: no cover
        return f"CSCGraph(n={self.num_nodes}, m={self.num_edges})"
