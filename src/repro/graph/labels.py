"""Planted features and labels that a GNN can actually learn.

Each node's class is its planted community; its feature vector is the
community centroid plus isotropic noise.  With homophilous edges, both the
node's own feature *and* its aggregated neighborhood point at the class,
so GraphSAGE/GCN/GAT converge the way Fig. 14's time-to-accuracy curves
require.  Noise is tuned so single-feature accuracy is imperfect and
aggregation visibly helps.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def planted_features_and_labels(
    communities: np.ndarray,
    dim: int,
    rng: np.random.Generator,
    noise: float = 1.3,
    dtype=np.float32,
) -> Tuple[np.ndarray, np.ndarray]:
    """Features = centroid[class] + noise; labels = class.

    Parameters
    ----------
    communities:
        Planted class per node (from the generator).
    dim:
        Feature dimensionality (the paper sweeps 64..768).
    noise:
        Std-dev of the additive Gaussian noise relative to unit-norm
        centroids.  ~1.3 gives mid-50s% single-node accuracy for ~170
        classes, matching the paper's Papers100M target (~56%).

    Returns
    -------
    (features, labels):
        ``features`` is float32 ``(n, dim)``; ``labels`` is int64 ``(n,)``.
    """
    communities = np.asarray(communities, dtype=np.int64)
    if dim < 1:
        raise ValueError("dim must be >= 1")
    if noise < 0:
        raise ValueError("noise must be non-negative")
    num_classes = int(communities.max()) + 1 if len(communities) else 0
    centroids = rng.standard_normal((num_classes, dim))
    centroids /= np.linalg.norm(centroids, axis=1, keepdims=True)
    feats = centroids[communities] + noise * rng.standard_normal(
        (len(communities), dim)
    ) / np.sqrt(dim)
    return feats.astype(dtype), communities.copy()


def train_val_test_split(
    num_nodes: int,
    rng: np.random.Generator,
    train_frac: float = 0.01,
    val_frac: float = 0.002,
    test_frac: float = 0.002,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random disjoint node splits; fractions follow OGB-style ratios
    (Papers100M trains on ~1.1% of nodes)."""
    total = train_frac + val_frac + test_frac
    if total > 1.0:
        raise ValueError("split fractions exceed 1")
    perm = rng.permutation(num_nodes)
    n_tr = max(1, int(num_nodes * train_frac))
    n_va = max(1, int(num_nodes * val_frac))
    n_te = max(1, int(num_nodes * test_frac))
    return (np.sort(perm[:n_tr]),
            np.sort(perm[n_tr:n_tr + n_va]),
            np.sort(perm[n_tr + n_va:n_tr + n_va + n_te]))
