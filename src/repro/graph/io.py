"""Dataset serialisation: save/load generated datasets as ``.npz``.

Generating mag240m-mini's 357 MB feature table takes seconds per
process; persisting datasets lets benchmark runs, notebooks, and CI
share one artifact.  The file carries everything :class:`DiskDataset`
needs, plus the spec for validation on load.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Optional

import numpy as np

from repro.graph.csc import CSCGraph
from repro.graph.datasets import DatasetSpec, DiskDataset, make_dataset
from repro.graph.featurestore import FeatureStore

FORMAT_VERSION = 1


def save_dataset(dataset: DiskDataset, path: str) -> None:
    """Write the dataset (topology, features, labels, splits) to *path*."""
    header = {
        "version": FORMAT_VERSION,
        "spec": asdict(dataset.spec),
    }
    np.savez_compressed(
        path,
        __header__=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        indptr=dataset.graph.indptr,
        indices=dataset.graph.indices,
        features=dataset.features.features,
        labels=dataset.labels,
        train_idx=dataset.train_idx,
        val_idx=dataset.val_idx,
        test_idx=dataset.test_idx,
    )


def load_dataset(path: str) -> DiskDataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    with np.load(path) as data:
        header = json.loads(bytes(data["__header__"]).decode())
        if header["version"] != FORMAT_VERSION:
            raise ValueError(f"unsupported dataset file version "
                             f"{header['version']}")
        spec = DatasetSpec(**header["spec"])
        graph = CSCGraph(data["indptr"], data["indices"])
        store = FeatureStore(data["features"], name=f"{spec.name}.features")
        return DiskDataset(spec, graph, store, data["labels"],
                           data["train_idx"], data["val_idx"],
                           data["test_idx"])


def cached_dataset(name: str, cache_dir: str, seed: int = 0,
                   dim: Optional[int] = None,
                   scale: float = 1.0) -> DiskDataset:
    """Load from *cache_dir* if present, else generate and persist.

    The cache key encodes every generation parameter, so distinct
    configurations never collide.
    """
    os.makedirs(cache_dir, exist_ok=True)
    key = f"{name}-s{seed}-d{dim if dim is not None else 'default'}-x{scale}"
    path = os.path.join(cache_dir, key + ".npz")
    if os.path.exists(path):
        return load_dataset(path)
    ds = make_dataset(name, seed=seed, dim=dim, scale=scale)
    save_dataset(ds, path)
    return ds
