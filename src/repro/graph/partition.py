"""Graph partitioning for the MariusGNN baseline.

MariusGNN splits nodes into P partitions and trains on the subset of
partitions resident in its in-memory buffer, swapping partitions between
sub-epochs.  Its "data preparation" step orders a sequence of partition
buffer states (the COMET policy) before each epoch — the step Table 2
charges on the critical path.

We use contiguous range partitions (what Marius does after its node
re-ordering pass) plus edge bucketing: edge (u, v) belongs to bucket
(part(u), part(v)); a bucket is trainable only when both partitions are
buffered.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graph.csc import CSCGraph


def partition_nodes(num_nodes: int, num_partitions: int) -> np.ndarray:
    """Balanced contiguous ranges; returns partition id per node."""
    if num_partitions < 1 or num_partitions > num_nodes:
        raise ValueError("num_partitions must be in [1, num_nodes]")
    bounds = np.linspace(0, num_nodes, num_partitions + 1).astype(np.int64)
    part = np.zeros(num_nodes, dtype=np.int64)
    for p in range(num_partitions):
        part[bounds[p]:bounds[p + 1]] = p
    return part


def edge_buckets(graph: CSCGraph, part: np.ndarray,
                 num_partitions: int) -> np.ndarray:
    """Edge counts per (src partition, dst partition) bucket.

    Vectorized: expands the CSC structure once.  Bucket counts drive
    MariusGNN's partition-ordering cost model (swaps needed to cover all
    buckets).
    """
    part = np.asarray(part, dtype=np.int64)
    if len(part) != graph.num_nodes:
        raise ValueError("partition array length mismatch")
    dst_per_edge = np.repeat(np.arange(graph.num_nodes, dtype=np.int64),
                             np.diff(graph.indptr))
    src_part = part[graph.indices]
    dst_part = part[dst_per_edge]
    counts = np.zeros((num_partitions, num_partitions), dtype=np.int64)
    np.add.at(counts, (src_part, dst_part), 1)
    return counts


def buffer_order(num_partitions: int, buffer_size: int) -> List[List[int]]:
    """A swap-minimising sequence of buffer states covering all buckets.

    Implements the classic lower-triangular traversal Marius uses: keep
    partition block [0..b-1] resident, then iterate remaining partitions
    one swap at a time so every (i, j) pair co-resides at least once.
    Returns the list of buffer states (each a list of partition ids).

    Raises if ``buffer_size < 2`` and there is more than one partition
    (pairs could never co-reside).
    """
    if buffer_size < 1 or buffer_size > num_partitions:
        raise ValueError("buffer_size must be in [1, num_partitions]")
    if num_partitions > 1 and buffer_size < 2:
        raise ValueError("buffer_size must be >= 2 to cover cross buckets")

    def recurse(parts: List[int]) -> List[List[int]]:
        if len(parts) <= buffer_size:
            return [list(parts)]
        head, pivot, rest = parts[:buffer_size - 1], parts[buffer_size - 1], parts[buffer_size:]
        states = [head + [pivot]]
        # Rotate the last slot over the remaining partitions: covers every
        # pair between `head` and the rest with one swap per state.
        states.extend(head + [p] for p in rest)
        # Pairs among {pivot} + rest are covered recursively.
        return states + recurse(parts[buffer_size - 1:])

    return recurse(list(range(num_partitions)))


def pairs_covered(states: List[List[int]]) -> set:
    """All unordered partition pairs that co-reside in some state."""
    seen = set()
    for state in states:
        s = sorted(set(state))
        for i in range(len(s)):
            for j in range(i, len(s)):
                seen.add((s[i], s[j]))
    return seen
