"""Graph partitioning for the MariusGNN baseline.

MariusGNN splits nodes into P partitions and trains on the subset of
partitions resident in its in-memory buffer, swapping partitions between
sub-epochs.  Its "data preparation" step orders a sequence of partition
buffer states (the COMET policy) before each epoch — the step Table 2
charges on the critical path.

We use contiguous range partitions (what Marius does after its node
re-ordering pass) plus edge bucketing: edge (u, v) belongs to bucket
(part(u), part(v)); a bucket is trainable only when both partitions are
buffered.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graph.csc import CSCGraph


#: splitmix64 constants (Steele et al.); a strong, dependency-free
#: 64-bit mixer.  Python's builtin ``hash`` is salted per process, so
#: every placement decision in the cluster plane goes through this
#: instead (the DET108 discipline).
_SM64_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM64_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SM64_M2 = np.uint64(0x94D049BB133111EB)


def splitmix64(keys: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over uint64 keys.

    Deterministic across runs and platforms (unlike ``hash``), uniform
    enough for placement: both :func:`hash_partition` and the cluster's
    consistent-hash ring build on it.
    """
    z = np.asarray(keys).astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        z += _SM64_GAMMA
        z = (z ^ (z >> np.uint64(30))) * _SM64_M1
        z = (z ^ (z >> np.uint64(27))) * _SM64_M2
        z ^= z >> np.uint64(31)
    return z


def hash_partition(num_nodes: int, num_partitions: int) -> np.ndarray:
    """Hash placement: partition id per node via splitmix64 mod P.

    Spreads contiguous id ranges (and therefore degree-correlated id
    order) evenly; the cluster's default feature-store sharding.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    keys = splitmix64(np.arange(num_nodes, dtype=np.uint64))
    return (keys % np.uint64(num_partitions)).astype(np.int64)


def degree_aware_partition(degrees: np.ndarray,
                           num_partitions: int) -> np.ndarray:
    """Balance *total degree* across partitions (greedy LPT).

    Nodes are placed heaviest-first onto the currently lightest
    partition (ties broken by partition index, so the result is
    deterministic).  High-degree nodes — the ones multi-hop queries
    fan out over — end up spread across shards instead of clumped
    wherever the id order put them.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    degrees = np.asarray(degrees, dtype=np.int64)
    order = np.argsort(-degrees, kind="stable")
    part = np.zeros(len(degrees), dtype=np.int64)
    # Load counts each node as its degree plus one, so zero-degree
    # nodes still spread instead of all landing on partition 0.
    loads = np.zeros(num_partitions, dtype=np.int64)
    for node in order:
        p = int(np.argmin(loads))  # first-minimum: deterministic ties
        part[node] = p
        loads[p] += degrees[node] + 1
    return part


def partition_nodes(num_nodes: int, num_partitions: int) -> np.ndarray:
    """Balanced contiguous ranges; returns partition id per node."""
    if num_partitions < 1 or num_partitions > num_nodes:
        raise ValueError("num_partitions must be in [1, num_nodes]")
    bounds = np.linspace(0, num_nodes, num_partitions + 1).astype(np.int64)
    part = np.zeros(num_nodes, dtype=np.int64)
    for p in range(num_partitions):
        part[bounds[p]:bounds[p + 1]] = p
    return part


def edge_buckets(graph: CSCGraph, part: np.ndarray,
                 num_partitions: int) -> np.ndarray:
    """Edge counts per (src partition, dst partition) bucket.

    Vectorized: expands the CSC structure once.  Bucket counts drive
    MariusGNN's partition-ordering cost model (swaps needed to cover all
    buckets).
    """
    part = np.asarray(part, dtype=np.int64)
    if len(part) != graph.num_nodes:
        raise ValueError("partition array length mismatch")
    dst_per_edge = np.repeat(np.arange(graph.num_nodes, dtype=np.int64),
                             np.diff(graph.indptr))
    src_part = part[graph.indices]
    dst_part = part[dst_per_edge]
    counts = np.zeros((num_partitions, num_partitions), dtype=np.int64)
    np.add.at(counts, (src_part, dst_part), 1)
    return counts


def buffer_order(num_partitions: int, buffer_size: int) -> List[List[int]]:
    """A swap-minimising sequence of buffer states covering all buckets.

    Implements the classic lower-triangular traversal Marius uses: keep
    partition block [0..b-1] resident, then iterate remaining partitions
    one swap at a time so every (i, j) pair co-resides at least once.
    Returns the list of buffer states (each a list of partition ids).

    Raises if ``buffer_size < 2`` and there is more than one partition
    (pairs could never co-reside).
    """
    if buffer_size < 1 or buffer_size > num_partitions:
        raise ValueError("buffer_size must be in [1, num_partitions]")
    if num_partitions > 1 and buffer_size < 2:
        raise ValueError("buffer_size must be >= 2 to cover cross buckets")

    def recurse(parts: List[int]) -> List[List[int]]:
        if len(parts) <= buffer_size:
            return [list(parts)]
        head, pivot, rest = parts[:buffer_size - 1], parts[buffer_size - 1], parts[buffer_size:]
        states = [head + [pivot]]
        # Rotate the last slot over the remaining partitions: covers every
        # pair between `head` and the rest with one swap per state.
        states.extend(head + [p] for p in rest)
        # Pairs among {pivot} + rest are covered recursively.
        return states + recurse(parts[buffer_size - 1:])

    return recurse(list(range(num_partitions)))


def pairs_covered(states: List[List[int]]) -> set:
    """All unordered partition pairs that co-reside in some state."""
    seen = set()
    for state in states:
        s = sorted(set(state))
        for i in range(len(s)):
            for j in range(i, len(s)):
                seen.add((s[i], s[j]))
    return seen
