"""Graph statistics: degree distributions, homophily, working sets.

Utility functions the tests and benchmarks use to validate that
generated datasets have the structural properties the experiments rely
on (heavy-tailed degrees, homophilous communities, realistic per-batch
working sets).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.graph.csc import CSCGraph


def degree_statistics(graph: CSCGraph) -> Dict[str, float]:
    """Summary of the in-degree distribution."""
    deg = graph.in_degree().astype(np.float64)
    out = {
        "mean": float(deg.mean()),
        "max": float(deg.max()) if len(deg) else 0.0,
        "p50": float(np.percentile(deg, 50)),
        "p99": float(np.percentile(deg, 99)),
        "zeros": float((deg == 0).mean()),
    }
    out["skew"] = out["max"] / out["mean"] if out["mean"] else 0.0
    return out


def gini_coefficient(values: np.ndarray) -> float:
    """Gini of a non-negative distribution (0 = uniform, ->1 = skewed).

    Real social/citation graphs have degree Gini well above 0.4; the
    RMAT/community generators must land in that regime for the paper's
    cache behaviour to transfer.
    """
    v = np.sort(np.asarray(values, dtype=np.float64))
    if len(v) == 0 or v.sum() == 0:
        return 0.0
    n = len(v)
    index = np.arange(1, n + 1)
    return float((2 * (index * v).sum() - (n + 1) * v.sum())
                 / (n * v.sum()))


def edge_homophily(graph: CSCGraph, labels: np.ndarray) -> float:
    """Fraction of edges whose endpoints share a label.

    GNN aggregation only helps when this beats chance; the planted
    datasets target ~0.6-0.8 (strong but imperfect communities).
    """
    labels = np.asarray(labels)
    if graph.num_edges == 0:
        return 0.0
    dst = np.repeat(np.arange(graph.num_nodes, dtype=np.int64),
                    np.diff(graph.indptr))
    return float((labels[graph.indices] == labels[dst]).mean())


def label_chance_rate(labels: np.ndarray) -> float:
    """Accuracy of always predicting the most common class."""
    labels = np.asarray(labels)
    if len(labels) == 0:
        return 0.0
    counts = np.bincount(labels)
    return float(counts.max() / len(labels))


def neighborhood_working_set(graph: CSCGraph, seeds: np.ndarray,
                             hops: int) -> int:
    """Exact k-hop in-neighborhood size (no sampling) — an upper bound
    on any sampler's per-batch unique-node count."""
    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    seen = frontier
    for _ in range(hops):
        flat, _ = graph.gather_neighbors(frontier)
        frontier = np.setdiff1d(np.unique(flat), seen, assume_unique=True)
        if len(frontier) == 0:
            break
        seen = np.union1d(seen, frontier)
    return int(len(seen))
