"""Feature table stored on the simulated SSD in node-ID order (§4.1).

"GNNDrive ... organizes each node's feature data in ascending order of
node IDs to make a table."  The store owns the data-plane matrix and its
catalog registration; readers (sync, async-ring, or page-cache paths)
compute timing from the record layout.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.storage.files import FileCatalog, FileHandle
from repro.storage.spec import SECTOR_SIZE


class FeatureStore:
    """A (num_nodes, dim) float feature table as an on-SSD file."""

    def __init__(self, features: np.ndarray, name: str = "features"):
        features = np.ascontiguousarray(features)
        if features.ndim != 2:
            raise ValueError("features must be 2-D (nodes x dim)")
        self.features = features
        self.name = name
        self.handle: Optional[FileHandle] = None

    @property
    def num_nodes(self) -> int:
        return self.features.shape[0]

    @property
    def dim(self) -> int:
        return self.features.shape[1]

    @property
    def record_nbytes(self) -> int:
        return self.features.shape[1] * self.features.itemsize

    @property
    def nbytes(self) -> int:
        return self.features.nbytes

    def io_size(self, direct: bool = True) -> int:
        """Bytes moved per node read (sector-rounded under direct I/O).

        §4.4: dims whose record size is not a sector multiple force
        redundant data into the staging buffer; e.g. a 100 B record costs
        a full 512 B read.
        """
        rec = self.record_nbytes
        if direct and rec % SECTOR_SIZE:
            rec = (rec // SECTOR_SIZE + 1) * SECTOR_SIZE
        return rec

    def mount(self, catalog: FileCatalog) -> FileHandle:
        """Register the table as a file; returns (and caches) the handle."""
        self.handle = catalog.create(self.name, data=self.features,
                                     record_nbytes=self.record_nbytes)
        return self.handle

    def gather(self, node_ids: np.ndarray) -> np.ndarray:
        """Data-plane read of the given rows (copy)."""
        return self.features[np.asarray(node_ids, dtype=np.int64)]
