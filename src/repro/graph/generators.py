"""Synthetic graph generators with the degree skew of the paper's datasets.

``rmat_edges`` produces the heavy-tailed in-degree distribution of citation
and social graphs (Papers100M, Twitter, Friendster); the standard RMAT
recursion is fully vectorized — one pass over ``log2(n)`` bit levels for
all edges at once, no per-edge Python loop.

``planted_partition_edges`` injects community structure (homophily) so the
planted labels of :mod:`repro.graph.labels` are *learnable by a GNN*:
neighbors mostly share a community, hence aggregation is informative and
time-to-accuracy curves (Fig. 14) are meaningful.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def rmat_edges(num_nodes: int, num_edges: int, rng: np.random.Generator,
               a: float = 0.57, b: float = 0.19, c: float = 0.19,
               ) -> Tuple[np.ndarray, np.ndarray]:
    """Generate RMAT edges over ``2**ceil(log2(n))`` leaves, clipped to n.

    Default (a, b, c, d) follow Graph500.  Returns directed (src, dst);
    duplicates possible (deduped at CSC build time).
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if num_edges < 0:
        raise ValueError("negative edge count")
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("a + b + c must be <= 1")
    levels = int(np.ceil(np.log2(num_nodes)))
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    # Per level, draw a quadrant for every edge at once.
    p_right_given_top = b / (a + b) if (a + b) > 0 else 0.0
    p_right_given_bottom = d / (c + d) if (c + d) > 0 else 0.0
    for _ in range(levels):
        u = rng.random(num_edges)
        v = rng.random(num_edges)
        bottom = u >= (a + b)
        right = np.where(bottom, v < p_right_given_bottom,
                         v < p_right_given_top)
        src = (src << 1) | bottom
        dst = (dst << 1) | right
    # Clip into [0, num_nodes) while preserving skew.
    src %= num_nodes
    dst %= num_nodes
    # Avoid self loops (re-point to a neighbor slot).
    self_loop = src == dst
    dst[self_loop] = (dst[self_loop] + 1) % num_nodes
    return src, dst


def planted_partition_edges(num_nodes: int, num_edges: int, num_classes: int,
                            rng: np.random.Generator,
                            homophily: float = 0.8,
                            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Community graph: a *homophily* fraction of edges stay in-community.

    Returns ``(src, dst, communities)`` where ``communities[v]`` is the
    planted class of node *v*.  Endpoint choice within/across communities
    is preferential-attachment-free but degree-skewed via a Zipf-ish
    position bias, keeping some hubs like real graphs.
    """
    if not 0.0 <= homophily <= 1.0:
        raise ValueError("homophily must be in [0, 1]")
    if num_classes < 1 or num_classes > num_nodes:
        raise ValueError("num_classes must be in [1, num_nodes]")
    communities = rng.integers(0, num_classes, size=num_nodes)
    order = np.argsort(communities, kind="stable")
    # Nodes grouped by community; boundaries for sampling within groups.
    sorted_comm = communities[order]
    starts = np.searchsorted(sorted_comm, np.arange(num_classes))
    ends = np.searchsorted(sorted_comm, np.arange(num_classes), side="right")

    def skewed(size, lo, hi):
        """Draw positions in [lo, hi) with a power-law bias toward lo."""
        u = rng.random(size)
        return (lo + ((hi - lo) * u ** 2)).astype(np.int64)

    src_pos = skewed(num_edges, 0, num_nodes)
    src = order[src_pos]
    in_comm = rng.random(num_edges) < homophily
    dst = np.empty(num_edges, dtype=np.int64)
    comm_of_src = communities[src]
    lo = starts[comm_of_src]
    hi = np.maximum(ends[comm_of_src], lo + 1)
    u = rng.random(num_edges)
    within = (lo + (hi - lo) * u ** 2).astype(np.int64)
    dst_in = order[np.minimum(within, hi - 1)]
    dst_out = order[skewed(num_edges, 0, num_nodes)]
    dst = np.where(in_comm, dst_in, dst_out)
    self_loop = src == dst
    dst[self_loop] = (dst[self_loop] + 1) % num_nodes
    return src, dst, communities
