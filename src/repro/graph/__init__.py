"""Graph substrate: topology, features, labels, datasets, partitions.

Topology is a compressed-sparse-column (CSC) adjacency exactly as the
paper stores it (§5 "Datasets"): the index-pointer array stays in host
memory (it is small and hot during sampling) while the index array and
the feature table live on the simulated SSD.

Datasets are scaled-down synthetic equivalents of the paper's Table 1
graphs, with matching degree skew (RMAT), feature dimensions, class
counts, and — critically — the same data-to-memory byte ratios once the
host budget is scaled by the same factor.
"""

from repro.graph.csc import CSCGraph
from repro.graph.build import csc_from_edges, add_self_loops, make_undirected
from repro.graph.generators import rmat_edges, planted_partition_edges
from repro.graph.labels import planted_features_and_labels
from repro.graph.featurestore import FeatureStore
from repro.graph.datasets import (
    DatasetSpec,
    DiskDataset,
    DATASET_REGISTRY,
    make_dataset,
    paper_table1,
)
from repro.graph.partition import partition_nodes, edge_buckets

__all__ = [
    "CSCGraph",
    "csc_from_edges",
    "add_self_loops",
    "make_undirected",
    "rmat_edges",
    "planted_partition_edges",
    "planted_features_and_labels",
    "FeatureStore",
    "DatasetSpec",
    "DiskDataset",
    "DATASET_REGISTRY",
    "make_dataset",
    "paper_table1",
    "partition_nodes",
    "edge_buckets",
]
