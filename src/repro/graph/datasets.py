"""Dataset registry: scaled-down equivalents of the paper's Table 1.

Each mini dataset preserves what the experiments depend on:

* heavy-tailed degree distribution and homophilous communities,
* the paper's feature dimension and class count,
* the byte *ratio* between topology, features, and host memory — the
  mini graphs are ~1/1000 of paper scale, and the benchmark machine's
  memory budget is scaled by the same factor, so "Papers100M under
  32 GB" and "papers100m-mini under 32 MB-equivalent" stress the page
  cache identically.

The paper's original Table 1 numbers are kept in :data:`PAPER_TABLE1`
so the reproduced table can print paper-vs-built side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from repro.graph.build import csc_from_edges
from repro.graph.csc import CSCGraph
from repro.graph.featurestore import FeatureStore
from repro.graph.generators import planted_partition_edges
from repro.graph.labels import planted_features_and_labels, train_val_test_split
from repro.storage.files import FileCatalog, FileHandle

#: int64 index entries, as in SciPy CSC.
INDEX_ITEMSIZE = 8


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic dataset."""

    name: str
    num_nodes: int
    num_edges: int
    dim: int
    num_classes: int
    homophily: float = 0.7
    train_frac: float = 0.011
    noise: float = 1.3
    #: Paper-scale counterpart (for Table 1 reporting).
    paper_name: str = ""

    def scaled(self, scale: float) -> "DatasetSpec":
        """Shrink/grow node and edge counts by *scale*."""
        return replace(
            self,
            num_nodes=max(64, int(self.num_nodes * scale)),
            num_edges=max(256, int(self.num_edges * scale)),
        )

    def with_dim(self, dim: int) -> "DatasetSpec":
        return replace(self, dim=dim)


#: Paper Table 1, for side-by-side reporting (counts, dims, classes, GB).
PAPER_TABLE1 = {
    "papers100m": dict(nodes="111M", edges="1.6B", dim=128, classes=172,
                       topo_gb=13, feat_gb=53, total_gb=67),
    "twitter": dict(nodes="41.7M", edges="1.5B", dim=128, classes=50,
                    topo_gb=11, feat_gb=20, total_gb=31),
    "friendster": dict(nodes="65.6M", edges="1.8B", dim=128, classes=50,
                       topo_gb=14, feat_gb=32, total_gb=46),
    "mag240m": dict(nodes="122M", edges="1.3B", dim=768, classes=153,
                    topo_gb=10, feat_gb=349, total_gb=359),
}

#: Mini datasets at 1/1000 of paper scale.
DATASET_REGISTRY: Dict[str, DatasetSpec] = {
    "papers100m-mini": DatasetSpec(
        "papers100m-mini", num_nodes=111_000, num_edges=1_600_000,
        dim=128, num_classes=172, paper_name="papers100m"),
    "twitter-mini": DatasetSpec(
        "twitter-mini", num_nodes=41_700, num_edges=1_500_000,
        dim=128, num_classes=50, paper_name="twitter"),
    "friendster-mini": DatasetSpec(
        "friendster-mini", num_nodes=65_600, num_edges=1_800_000,
        dim=128, num_classes=50, paper_name="friendster"),
    "mag240m-mini": DatasetSpec(
        "mag240m-mini", num_nodes=122_000, num_edges=1_300_000,
        dim=768, num_classes=153, paper_name="mag240m"),
    # Tiny profile for unit/integration tests.
    "tiny": DatasetSpec(
        "tiny", num_nodes=2_000, num_edges=20_000, dim=32,
        num_classes=8, train_frac=0.05, paper_name=""),
}


class DiskDataset:
    """A generated graph plus its on-SSD placement metadata.

    Host-resident: ``indptr`` (index-pointer array, < 1 GB at paper scale,
    kept in memory by every system per §5).  On-SSD: the CSC ``indices``
    array and the feature table; call :meth:`mount` against a machine's
    file catalog to register both.
    """

    def __init__(self, spec: DatasetSpec, graph: CSCGraph,
                 features: FeatureStore, labels: np.ndarray,
                 train_idx: np.ndarray, val_idx: np.ndarray,
                 test_idx: np.ndarray):
        self.spec = spec
        self.graph = graph
        self.features = features
        self.labels = labels
        self.train_idx = train_idx
        self.val_idx = val_idx
        self.test_idx = test_idx
        self.topo_handle: Optional[FileHandle] = None
        self.feat_handle: Optional[FileHandle] = None

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def dim(self) -> int:
        return self.features.dim

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    def topo_nbytes(self) -> int:
        """On-SSD topology bytes (the CSC index array)."""
        return self.graph.num_edges * INDEX_ITEMSIZE

    def feat_nbytes(self) -> int:
        return self.features.nbytes

    def total_nbytes(self) -> int:
        return self.topo_nbytes() + self.feat_nbytes()

    def indptr_nbytes(self) -> int:
        """Host-resident index-pointer bytes."""
        return self.graph.indptr.nbytes

    # ------------------------------------------------------------------
    def mount(self, catalog: FileCatalog) -> None:
        """Register topology-index and feature files on a machine."""
        self.topo_handle = catalog.create(
            f"{self.name}.indices",
            data=self.graph.indices.reshape(-1, 1),
            record_nbytes=INDEX_ITEMSIZE,
        )
        self.feat_handle = self.features.mount(catalog)

    def summary_row(self) -> Dict[str, object]:
        """One row of the reproduced Table 1."""
        mb = 1 / (1024 * 1024)
        row = dict(
            dataset=self.name,
            nodes=self.num_nodes,
            edges=self.num_edges,
            dim=self.dim,
            classes=self.num_classes,
            topo_mb=round(self.topo_nbytes() * mb, 1),
            feat_mb=round(self.feat_nbytes() * mb, 1),
            total_mb=round(self.total_nbytes() * mb, 1),
        )
        if self.spec.paper_name:
            row["paper"] = PAPER_TABLE1[self.spec.paper_name]
        return row


def make_dataset(name_or_spec, seed: int = 0, dim: Optional[int] = None,
                 scale: float = 1.0) -> DiskDataset:
    """Generate a dataset from the registry (or a custom spec).

    Parameters
    ----------
    name_or_spec:
        Registry key or a :class:`DatasetSpec`.
    seed:
        Root seed; topology, features and splits each use derived streams.
    dim:
        Optional feature-dimension override (the Fig. 2/8 sweeps).
    scale:
        Extra scale factor on top of the registry's 1/1000.
    """
    if isinstance(name_or_spec, DatasetSpec):
        spec = name_or_spec
    else:
        try:
            spec = DATASET_REGISTRY[name_or_spec]
        except KeyError:
            raise KeyError(
                f"unknown dataset {name_or_spec!r}; known: "
                f"{sorted(DATASET_REGISTRY)}") from None
    if scale != 1.0:
        spec = spec.scaled(scale)
    if dim is not None:
        spec = spec.with_dim(dim)

    rng_topo = np.random.default_rng(np.random.SeedSequence([seed, 1]))
    rng_feat = np.random.default_rng(np.random.SeedSequence([seed, 2]))
    rng_split = np.random.default_rng(np.random.SeedSequence([seed, 3]))

    src, dst, communities = planted_partition_edges(
        spec.num_nodes, spec.num_edges, spec.num_classes, rng_topo,
        homophily=spec.homophily)
    graph = csc_from_edges(src, dst, spec.num_nodes)
    feats, labels = planted_features_and_labels(
        communities, spec.dim, rng_feat, noise=spec.noise)
    train_idx, val_idx, test_idx = train_val_test_split(
        spec.num_nodes, rng_split, train_frac=spec.train_frac)
    store = FeatureStore(feats, name=f"{spec.name}.features")
    return DiskDataset(spec, graph, store, labels, train_idx, val_idx, test_idx)


def paper_table1() -> Dict[str, Dict[str, object]]:
    """The original Table 1 (for the reproduced-table printer)."""
    return {k: dict(v) for k, v in PAPER_TABLE1.items()}
