"""``python -m repro.lint`` — the determinism linter entry point.

Thin wrapper around :mod:`repro.analysis.linter`; see that module for
the rule catalog and suppression syntax.  Exit status: 0 clean, 1
findings, 2 usage/parse error.
"""

from __future__ import annotations

from repro.analysis.linter import main

if __name__ == "__main__":
    raise SystemExit(main())
