"""Exception hierarchy for the GNNDrive reproduction.

Every failure mode the paper's evaluation exercises (out-of-memory on
over-committed hosts, out-of-time runs, misaligned direct I/O) has a
dedicated exception so benchmarks can report ``OOM`` / ``OOT`` rows the
same way Table 2 and Figures 9/10/14 do.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError, ValueError):
    """A configuration value failed validation at construction time.

    Subclasses :class:`ValueError` so call sites (and tests) written
    against the generic validation errors keep working; the dedicated
    type lets fault plans and machine specs report the offending field
    by name instead of surfacing as NaN service times downstream.
    """


class SimulationError(ReproError):
    """Internal inconsistency inside the discrete-event engine."""


class InterruptError(ReproError):
    """A simulated process was interrupted by another process.

    Attributes
    ----------
    cause:
        The value passed to :meth:`repro.simcore.Process.interrupt`.
    """

    def __init__(self, cause: object = None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class SanitizerError(ReproError):
    """A :class:`repro.analysis.SimSanitizer` audit failed in strict mode
    (memory leak at epoch end, bad event schedule, ring violation)."""


class DoubleFreeError(ReproError):
    """An :class:`repro.memory.Allocation` was freed twice.

    Silent double-frees would double-credit the host budget and corrupt
    the capacity arithmetic every OOM result in the paper rests on.
    """

    def __init__(self, alloc_id: int, tag: str, nbytes: int):
        super().__init__(
            f"double free of allocation #{alloc_id} "
            f"(tag {tag!r}, {nbytes} B): already returned to the pool"
        )
        self.alloc_id = alloc_id
        self.tag = tag
        self.nbytes = nbytes


class OutOfMemoryError(ReproError):
    """A host- or device-memory allocation exceeded the configured budget.

    Raised by :class:`repro.memory.HostMemory` and
    :class:`repro.memory.DeviceMemory`; surfaced as the ``OOM`` entries in
    the reproduced Table 2 and Figures 9/10/14.
    """

    def __init__(self, requested: int, available: int, where: str = "host"):
        super().__init__(
            f"OOM on {where} memory: requested {requested} B "
            f"but only {available} B available"
        )
        self.requested = requested
        self.available = available
        self.where = where


class OutOfTimeError(ReproError):
    """A training run exceeded its simulated-time budget (``OOT``)."""

    def __init__(self, budget: float):
        super().__init__(f"OOT: exceeded simulated time budget of {budget} s")
        self.budget = budget


class AlignmentError(ReproError):
    """A direct-I/O request violated the 512 B sector alignment rule."""


class StorageError(ReproError):
    """Out-of-range access or unknown file on the simulated device."""
