"""Property tests: the page cache against a reference LRU model."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.memory import HostMemory
from repro.simcore import Simulator
from repro.storage import FileCatalog, PageCache, SSDDevice, SSDSpec
from repro.storage.spec import PAGE_SIZE


class ReferenceLRU:
    """Textbook LRU over (file, page) keys with a capacity in pages."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.order = []  # LRU at index 0

    def access(self, name, pages):
        """PageCache semantics: within one access, hit pages are
        refreshed first (ascending page order), then missed pages are
        inserted as MRU (ascending)."""
        unique = sorted(set(int(x) for x in pages))
        hit_keys = [(name, p) for p in unique if (name, p) in self.order]
        miss_keys = [(name, p) for p in unique if (name, p) not in self.order]
        for key in hit_keys:
            self.order.remove(key)
            self.order.append(key)
        self.order.extend(miss_keys)
        while len(self.order) > self.capacity:
            self.order.pop(0)
        return len(hit_keys), len(miss_keys)

    def resident(self):
        return set(self.order)


access_list = st.lists(
    st.tuples(st.sampled_from(["a", "b"]),
              st.lists(st.integers(0, 30), min_size=1, max_size=8)),
    min_size=1, max_size=40)


@settings(max_examples=120, deadline=None)
@given(access_list, st.integers(1, 20))
def test_cache_matches_reference_lru(accesses, capacity_pages):
    sim = Simulator()
    host = HostMemory(capacity=capacity_pages * PAGE_SIZE)
    dev = SSDDevice(sim, SSDSpec(1e-6, 1e9, 4))
    cache = PageCache(sim, host, dev)
    cat = FileCatalog()
    handles = {n: cat.create(n, nbytes=64 * PAGE_SIZE) for n in ("a", "b")}
    ref = ReferenceLRU(capacity_pages)

    def proc(sim):
        for name, pages in accesses:
            ev = cache.access(handles[name], np.array(pages))
            hits, misses = yield ev
            r_hits, r_misses = ref.access(name, pages)
            assert (hits, misses) == (r_hits, r_misses), \
                f"divergence at {name}:{pages}"
        return None

    sim.run_process(proc(sim))
    got = set(cache.resident_keys())
    assert got == ref.resident()
    # Exact LRU order, not just the resident set.
    assert cache.resident_keys() == ref.order


@settings(max_examples=60, deadline=None)
@given(access_list, st.integers(2, 20), st.integers(1, 15))
def test_pressure_shrink_matches_reference(accesses, capacity_pages, pin):
    """A pinned allocation mid-run evicts LRU pages like the reference."""
    pin = min(pin, capacity_pages - 1)
    sim = Simulator()
    host = HostMemory(capacity=capacity_pages * PAGE_SIZE)
    dev = SSDDevice(sim, SSDSpec(1e-6, 1e9, 4))
    cache = PageCache(sim, host, dev)
    cat = FileCatalog()
    handles = {n: cat.create(n, nbytes=64 * PAGE_SIZE) for n in ("a", "b")}
    ref = ReferenceLRU(capacity_pages)

    half = len(accesses) // 2

    def proc(sim):
        for name, pages in accesses[:half]:
            yield cache.access(handles[name], np.array(pages))
            ref.access(name, pages)
        # Memory pressure arrives.
        host.allocate(pin * PAGE_SIZE)
        ref.capacity = capacity_pages - pin
        while len(ref.order) > ref.capacity:
            ref.order.pop(0)
        for name, pages in accesses[half:]:
            yield cache.access(handles[name], np.array(pages))
            ref.access(name, pages)
        return None

    sim.run_process(proc(sim))
    assert set(cache.resident_keys()) == ref.resident()
    assert cache.resident_keys() == ref.order
