"""Tests for the io_uring-style async ring."""

import numpy as np
import pytest

from repro.errors import AlignmentError
from repro.simcore import Simulator
from repro.storage import AsyncRing, FileCatalog, SSDDevice, SSDSpec


def make_env(channels=4, latency=0.0, bw=1e6, depth=64, direct=True):
    sim = Simulator()
    dev = SSDDevice(sim, SSDSpec(read_latency=latency,
                                 channel_bandwidth=bw, channels=channels))
    cat = FileCatalog()
    fh = cat.create("feat", nbytes=1 << 24, data=None)
    ring = AsyncRing(sim, dev, depth=depth, direct=direct)
    return sim, dev, fh, ring


def test_prepare_and_submit_fills_completion_times():
    sim, dev, fh, ring = make_env()
    for i in range(3):
        ring.prepare_read(fh, i * 512, 512)
    assert len(ring) == 3
    done = ring.submit()
    assert len(ring) == 0
    assert len(done) == 3
    assert ring.submitted == 3
    assert np.all(done > 0)


def test_async_single_thread_matches_channel_parallelism():
    """One ring at depth >= channels uses all channels at once."""
    sim, dev, fh, ring = make_env(channels=4, latency=0.0, bw=1e6, depth=64)
    for i in range(4):
        ring.prepare_read(fh, i * 1024, 1024)
    done = ring.submit()
    assert done == pytest.approx([1.024e-3] * 4)


def test_depth_bounds_in_flight():
    sim, dev, fh, ring = make_env(channels=8, latency=0.0, bw=1e6, depth=2)
    for i in range(4):
        ring.prepare_read(fh, i * 1024, 1024)
    done = ring.submit()
    # Only 2 in flight: waves of 2 despite 8 channels.
    assert sorted(done) == pytest.approx([1.024e-3, 1.024e-3, 2.048e-3, 2.048e-3])


def test_alignment_enforced_in_direct_mode():
    sim, dev, fh, ring = make_env(direct=True)
    with pytest.raises(AlignmentError):
        ring.prepare_read(fh, 100, 512)
    ring2 = AsyncRing(sim, dev, direct=False)
    ring2.prepare_read(fh, 100, 300)  # fine when buffered


def test_prepare_record_reads_rounds_and_aligns():
    sim = Simulator()
    dev = SSDDevice(sim, SSDSpec(read_latency=0, channel_bandwidth=1e6, channels=1))
    cat = FileCatalog()
    data = np.zeros((100, 100), dtype=np.uint8)  # 100 B records
    fh = cat.create("f", data=data)
    ring = AsyncRing(sim, dev, direct=True)
    sqes = ring.prepare_record_reads(fh, np.array([7]))
    assert len(sqes) == 1
    assert sqes[0].nbytes == 512            # rounded up to sector
    assert sqes[0].offset % 512 == 0        # aligned down
    assert sqes[0].offset <= 700 < sqes[0].offset + 512


def test_submit_and_wait_event():
    sim, dev, fh, ring = make_env(channels=1, latency=0.0, bw=1e6)

    def proc(sim):
        for i in range(3):
            ring.prepare_read(fh, i * 1024, 1024)
        times = yield ring.submit_and_wait()
        return (sim.now, times)

    now, times = sim.run_process(proc(sim))
    assert now == pytest.approx(3 * 1.024e-3)
    assert len(times) == 3


def test_submit_empty_ring():
    sim, dev, fh, ring = make_env()
    assert len(ring.submit()) == 0


def test_drain_wait_empty_and_nonempty():
    sim, dev, fh, ring = make_env(channels=1, latency=0.0, bw=1e6)

    def proc(sim):
        ring.prepare_read(fh, 0, 1024)
        done = ring.submit()
        yield ring.drain_wait(done)
        t_mid = sim.now
        yield ring.drain_wait(np.empty(0))
        return (t_mid, sim.now)

    t_mid, t_end = sim.run_process(proc(sim))
    assert t_mid == pytest.approx(1.024e-3)
    assert t_end == t_mid


def test_depth_validation():
    sim = Simulator()
    dev = SSDDevice(sim, SSDSpec(read_latency=0, channel_bandwidth=1, channels=1))
    with pytest.raises(ValueError):
        AsyncRing(sim, dev, depth=0)


def test_async_one_ring_equals_sync_many_threads():
    """The Appendix B headline: async 1 thread ~ sync N threads."""
    from repro.storage import SyncFile

    n_requests, size = 64, 512

    # Async: one ring, depth = channels.
    sim_a, dev_a, fh_a, ring = make_env(channels=8, latency=80e-6,
                                        bw=70e6, depth=8)
    for i in range(n_requests):
        ring.prepare_read(fh_a, i * size, size)

    def async_proc(sim):
        yield ring.submit_and_wait()
        return sim.now

    t_async = sim_a.run_process(async_proc(sim_a))

    # Sync: 8 threads, each 8 chained requests.
    sim_s = Simulator()
    dev_s = SSDDevice(sim_s, SSDSpec(read_latency=80e-6,
                                     channel_bandwidth=70e6, channels=8))
    cat = FileCatalog()
    fh_s = cat.create("f", nbytes=1 << 20)
    f = SyncFile(sim_s, dev_s, fh_s, direct=False)

    def sync_worker(sim):
        for _ in range(8):
            yield f.read(0, size)

    procs = [sim_s.process(sync_worker(sim_s)) for _ in range(8)]
    sim_s.drain(procs)
    t_sync = sim_s.now

    assert t_async == pytest.approx(t_sync, rel=0.15)
