"""Tests for the channelized SSD timing model."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.simcore import Simulator
from repro.storage import SSDDevice, SSDSpec, PM883, S3510


def make_device(sim=None, latency=100e-6, bw=50e6, channels=4):
    sim = sim or Simulator()
    spec = SSDSpec(read_latency=latency, channel_bandwidth=bw, channels=channels)
    return sim, SSDDevice(sim, spec)


def test_single_request_service_time():
    sim, dev = make_device(latency=100e-6, bw=50e6)
    done = dev.submit(50_000)  # 1 ms transfer + 0.1 ms latency
    assert done == pytest.approx(1.1e-3)


def test_parallel_requests_fill_channels():
    sim, dev = make_device(latency=0.0, bw=1e6, channels=4)
    # 8 requests of 1000 B (1 ms each) over 4 channels: 2 waves.
    done = dev.submit_batch(np.full(8, 1000))
    assert sorted(done)[:4] == pytest.approx([1e-3] * 4)
    assert sorted(done)[4:] == pytest.approx([2e-3] * 4)


def test_io_depth_one_serialises():
    sim, dev = make_device(latency=0.0, bw=1e6, channels=4)
    done = dev.submit_batch(np.full(4, 1000), io_depth=1)
    assert list(done) == pytest.approx([1e-3, 2e-3, 3e-3, 4e-3])


def test_io_depth_two_pipelines_pairwise():
    sim, dev = make_device(latency=0.0, bw=1e6, channels=4)
    done = dev.submit_batch(np.full(4, 1000), io_depth=2)
    # Requests 0,1 run together; 2 starts after 0; 3 after 1.
    assert list(done) == pytest.approx([1e-3, 1e-3, 2e-3, 2e-3])


def test_bandwidth_saturates_with_depth():
    """Appendix B property: deeper rings reach max bandwidth."""
    results = {}
    for depth in (1, 4, 32):
        sim, dev = make_device(latency=80e-6, bw=70e6, channels=8)
        n, size = 2000, 512
        done = dev.submit_batch(np.full(n, size), io_depth=depth)
        results[depth] = n * size / done.max()
    assert results[1] < results[4] < results[32]
    # Depth 32 should approach channels/latency-bound IOPS.
    assert results[32] > 5 * results[1]


def test_latency_grows_with_depth():
    """Appendix B Fig B.1(d): average latency rises with io-depth."""
    lat = {}
    for depth in (1, 16):
        sim, dev = make_device(latency=80e-6, bw=70e6, channels=8)
        n = 512
        done = dev.submit_batch(np.full(n, 512), io_depth=depth)
        # Latency = completion - submission (all submitted at t=0 but
        # window-gated); approximate as mean completion spacing x depth.
        starts = np.zeros(n)
        starts[depth:] = done[:-depth]
        lat[depth] = float(np.mean(done - starts))
    assert lat[16] > lat[1]


def test_requests_persist_channel_state_across_batches():
    sim, dev = make_device(latency=0.0, bw=1e6, channels=1)
    first = dev.submit_batch(np.array([1000]))
    second = dev.submit_batch(np.array([1000]))
    assert second[0] == pytest.approx(first[0] + 1e-3)


def test_later_submission_after_drain_starts_fresh():
    sim, dev = make_device(latency=0.0, bw=1e6, channels=1)
    dev.submit_batch(np.array([1000]))

    def proc(sim):
        yield sim.timeout(1.0)  # far past the drain
        return dev.submit(1000)

    done = sim.run_process(proc(sim))
    assert done == pytest.approx(1.0 + 1e-3)


def test_start_times_delay_entry():
    sim, dev = make_device(latency=0.0, bw=1e6, channels=2)
    done = dev.submit_batch(np.full(2, 1000), start_times=np.array([0.0, 0.005]))
    assert done[0] == pytest.approx(1e-3)
    assert done[1] == pytest.approx(6e-3)


def test_stats_accumulate():
    sim, dev = make_device()
    dev.submit_batch(np.full(10, 512))
    assert dev.requests == 10
    assert dev.bytes_read == 5120


def test_empty_batch():
    sim, dev = make_device()
    assert len(dev.submit_batch(np.empty(0, dtype=np.int64))) == 0


def test_negative_size_rejected():
    sim, dev = make_device()
    with pytest.raises(ValueError):
        dev.submit_batch(np.array([-1]))


def test_batch_event_fires_at_last_completion():
    sim, dev = make_device(latency=0.0, bw=1e6, channels=1)

    def proc(sim):
        ev = dev.batch_event(np.full(3, 1000))
        times = yield ev
        return (sim.now, times)

    now, times = sim.run_process(proc(sim))
    assert now == pytest.approx(3e-3)
    assert len(times) == 3


def test_spec_presets_are_sane():
    assert PM883.max_bandwidth == pytest.approx(552e6)
    assert S3510.max_bandwidth < PM883.max_bandwidth
    with pytest.raises(ValueError):
        SSDSpec(read_latency=-1, channel_bandwidth=1, channels=1)
    with pytest.raises(ValueError):
        SSDSpec(read_latency=0, channel_bandwidth=0, channels=1)
    with pytest.raises(ValueError):
        SSDSpec(read_latency=0, channel_bandwidth=1, channels=0)


def test_device_utilization_bounded():
    sim, dev = make_device(latency=0.0, bw=1e6, channels=2)

    def proc(sim):
        yield dev.batch_event(np.full(4, 1000))

    sim.run_process(proc(sim))
    assert 0.0 < dev.utilization() <= 1.0


def test_write_accounting_separate_from_reads():
    sim, dev = make_device()
    dev.submit_batch(np.full(4, 1000))
    dev.submit_batch(np.full(3, 2000), write=True)
    assert dev.bytes_read == 4000
    assert dev.requests == 4
    assert dev.bytes_written == 6000
    assert dev.write_requests == 3


def test_write_event_contends_with_reads():
    sim, dev = make_device(latency=0.0, bw=1e6, channels=1)

    def proc(sim):
        yield dev.write_event(1000)
        t_w = sim.now
        yield dev.read_event(1000)
        return t_w, sim.now

    t_w, t_r = sim.run_process(proc(sim))
    assert t_w == pytest.approx(1e-3)
    assert t_r == pytest.approx(2e-3)  # serialised on the same channel


# ----------------------------------------------------------------------
# Edge cases: empty batches and zero-byte requests
# ----------------------------------------------------------------------
def test_empty_batch_returns_empty_completions():
    sim, dev = make_device()
    done = dev.submit_batch(np.empty(0, dtype=np.int64))
    assert done.shape == (0,)
    assert dev.requests == 0 and dev.bytes_read == 0
    assert dev.busy_time == 0.0


def test_empty_batch_event_completes_now():
    sim, dev = make_device()

    def proc(sim):
        done = yield dev.batch_event(np.empty(0, dtype=np.int64))
        return sim.now, done

    now, done = sim.run_process(proc(sim))
    assert now == 0.0 and len(done) == 0


def test_zero_byte_requests_complete_for_free():
    sim, dev = make_device(latency=100e-6)
    done = dev.submit_batch(np.zeros(3, dtype=np.int64))
    assert list(done) == [0.0, 0.0, 0.0]  # no media latency, no channel
    assert dev.busy_time == 0.0
    assert dev.requests == 3 and dev.bytes_read == 0


def test_zero_byte_requests_do_not_occupy_channels():
    sim, dev = make_device(latency=0.0, bw=1e6, channels=2)
    # Two real requests + two empties: the empties must not steal the
    # two channels from the payload-carrying requests.
    done = dev.submit_batch(np.array([1000, 0, 1000, 0]))
    assert done[0] == pytest.approx(1e-3)
    assert done[2] == pytest.approx(1e-3)
    assert done[1] == 0.0 and done[3] == 0.0


def test_zero_byte_requests_respect_io_depth_chain():
    sim, dev = make_device(latency=0.0, bw=1e6, channels=4)
    # depth 1: the zero-byte request still waits for its predecessor.
    done = dev.submit_batch(np.array([1000, 0, 1000]), io_depth=1)
    assert list(done) == pytest.approx([1e-3, 1e-3, 2e-3])


def test_negative_sizes_rejected():
    sim, dev = make_device()
    with pytest.raises(ValueError):
        dev.submit_batch(np.array([100, -1]))


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kwargs", [
    dict(read_latency=-1e-6),
    dict(read_latency=float("nan")),
    dict(channel_bandwidth=0.0),
    dict(channel_bandwidth=float("inf")),
    dict(channels=0),
])
def test_ssd_spec_validation(kwargs):
    base = dict(read_latency=100e-6, channel_bandwidth=50e6, channels=4)
    base.update(kwargs)
    with pytest.raises(ConfigError):
        SSDSpec(**base)
