"""Property-based tests for the SSD queueing model."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.simcore import Simulator
from repro.storage import SSDDevice, SSDSpec


def make_device(channels, latency=50e-6, bw=1e8):
    sim = Simulator()
    return SSDDevice(sim, SSDSpec(read_latency=latency,
                                  channel_bandwidth=bw, channels=channels))


sizes_strategy = st.lists(st.integers(1, 1 << 20), min_size=1, max_size=60)


@settings(max_examples=100, deadline=None)
@given(sizes_strategy, st.integers(1, 8))
def test_completion_at_least_service_time(sizes, channels):
    dev = make_device(channels)
    done = dev.submit_batch(np.array(sizes))
    for size, t in zip(sizes, done):
        assert t >= dev.service_time(size) - 1e-12


@settings(max_examples=100, deadline=None)
@given(sizes_strategy, st.integers(1, 8))
def test_total_work_conserved(sizes, channels):
    """Makespan x channels >= total service time (no work invented)."""
    dev = make_device(channels)
    done = dev.submit_batch(np.array(sizes))
    total_service = sum(dev.service_time(s) for s in sizes)
    assert done.max() * channels >= total_service - 1e-9


@settings(max_examples=100, deadline=None)
@given(sizes_strategy, st.integers(1, 8))
def test_makespan_bounded_by_serial_execution(sizes, channels):
    dev = make_device(channels)
    done = dev.submit_batch(np.array(sizes))
    serial = sum(dev.service_time(s) for s in sizes)
    assert done.max() <= serial + 1e-9


@settings(max_examples=60, deadline=None)
@given(sizes_strategy, st.integers(1, 8), st.integers(1, 16))
def test_deeper_windows_never_slower(sizes, channels, depth):
    """Relaxing the io-depth bound cannot increase the makespan."""
    sizes = np.array(sizes)
    shallow = make_device(channels).submit_batch(sizes, io_depth=depth)
    deep = make_device(channels).submit_batch(sizes, io_depth=depth * 2)
    assert deep.max() <= shallow.max() + 1e-9


@settings(max_examples=60, deadline=None)
@given(sizes_strategy)
def test_more_channels_never_slower(sizes):
    sizes = np.array(sizes)
    few = make_device(2).submit_batch(sizes)
    many = make_device(8).submit_batch(sizes)
    assert many.max() <= few.max() + 1e-9


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(1, 1 << 16), min_size=2, max_size=40))
def test_uniform_sizes_complete_in_submission_waves(sizes):
    """With equal sizes and idle channels, completion times are
    non-decreasing in submission order."""
    dev = make_device(4)
    uniform = np.full(len(sizes), 4096)
    done = dev.submit_batch(uniform)
    assert np.all(np.diff(done) >= -1e-12)
