"""Property tests: batched residency APIs against per-page loops.

``residency_mask`` and ``records_resident_mask`` are pure reads of the
per-file page index; whatever state a random warm/access/invalidate
trace leaves the cache in, they must agree bit-for-bit with the obvious
``contains``-loop formulations the driver used before they existed.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.memory import HostMemory
from repro.simcore import Simulator
from repro.storage import FileCatalog, PageCache, SSDDevice, SSDSpec
from repro.storage.spec import PAGE_SIZE

NAMES = ("a", "b")
FILE_PAGES = 48
RECORD_NBYTES = 1536   # records straddle page boundaries


def make_cache(capacity_pages):
    sim = Simulator()
    host = HostMemory(capacity=capacity_pages * PAGE_SIZE)
    dev = SSDDevice(sim, SSDSpec(1e-6, 1e9, 4))
    cache = PageCache(sim, host, dev)
    cat = FileCatalog()
    handles = {n: cat.create(n, nbytes=FILE_PAGES * PAGE_SIZE,
                             record_nbytes=RECORD_NBYTES) for n in NAMES}
    return sim, cache, handles


page_list = st.lists(st.integers(0, FILE_PAGES - 1), min_size=1, max_size=10)
trace_step = st.one_of(
    st.tuples(st.just("warm"), st.sampled_from(NAMES), page_list),
    st.tuples(st.just("access"), st.sampled_from(NAMES), page_list),
    st.tuples(st.just("invalidate"), st.sampled_from(NAMES), st.none()),
)


def apply_trace(sim, cache, handles, trace):
    def proc(sim):
        for op, name, pages in trace:
            if op == "warm":
                cache.warm(handles[name], np.array(pages))
            elif op == "access":
                yield cache.access(handles[name], np.array(pages))
            else:
                cache.invalidate_file(name)
        return None

    sim.run_process(proc(sim))


@settings(max_examples=120, deadline=None)
@given(st.lists(trace_step, min_size=1, max_size=25),
       st.integers(4, 2 * FILE_PAGES),
       st.lists(st.integers(-2, FILE_PAGES + 2), min_size=1, max_size=30))
def test_residency_mask_matches_contains(trace, capacity_pages, query):
    sim, cache, handles = make_cache(capacity_pages)
    apply_trace(sim, cache, handles, trace)
    for name in NAMES:
        got = cache.residency_mask(handles[name], np.array(query))
        want = np.array([cache.contains(name, p) for p in query])
        assert np.array_equal(got, want), f"divergence on file {name}"


@settings(max_examples=120, deadline=None)
@given(st.lists(trace_step, min_size=1, max_size=25),
       st.integers(4, 2 * FILE_PAGES),
       st.lists(st.integers(0, FILE_PAGES * PAGE_SIZE // RECORD_NBYTES - 1),
                min_size=1, max_size=20))
def test_records_resident_mask_matches_per_record_loop(
        trace, capacity_pages, records):
    sim, cache, handles = make_cache(capacity_pages)
    apply_trace(sim, cache, handles, trace)
    for name in NAMES:
        handle = handles[name]
        got = cache.records_resident_mask(handle, np.array(records))
        want = np.array([
            all(cache.contains(name, int(p))
                for p in cache.pages_for_records(handle, np.array([r])))
            for r in records])
        assert np.array_equal(got, want), f"divergence on file {name}"
        # Residency tests must not have perturbed LRU state.
        cache.records_resident_mask(handle, np.array(records))
    before = cache.resident_keys()
    cache.residency_mask(handles["a"], np.arange(FILE_PAGES))
    assert cache.resident_keys() == before
