"""Tests for the file catalog and sync read path."""

import numpy as np
import pytest

from repro.errors import AlignmentError, StorageError
from repro.simcore import Simulator
from repro.storage import FileCatalog, SSDDevice, SSDSpec, SyncFile
from repro.storage.spec import SECTOR_SIZE


def make_env(channels=4, latency=0.0, bw=1e6):
    sim = Simulator()
    dev = SSDDevice(sim, SSDSpec(read_latency=latency,
                                 channel_bandwidth=bw, channels=channels))
    cat = FileCatalog()
    return sim, dev, cat


def test_catalog_create_from_data_infers_sizes():
    _, _, cat = make_env()
    data = np.zeros((10, 128), dtype=np.float32)
    fh = cat.create("feat", data=data)
    assert fh.nbytes == 10 * 128 * 4
    assert fh.record_nbytes == 512
    assert fh.num_records == 10


def test_catalog_duplicate_and_missing():
    _, _, cat = make_env()
    cat.create("a", nbytes=100)
    with pytest.raises(StorageError):
        cat.create("a", nbytes=100)
    with pytest.raises(StorageError):
        cat.get("zzz")
    assert "a" in cat and len(cat) == 1
    cat.remove("a")
    with pytest.raises(StorageError):
        cat.remove("a")


def test_catalog_total_bytes():
    _, _, cat = make_env()
    cat.create("a", nbytes=100)
    cat.create("b", nbytes=200)
    assert cat.total_bytes() == 300


def test_handle_range_check():
    _, _, cat = make_env()
    fh = cat.create("a", nbytes=1000)
    fh.check_range(0, 1000)
    with pytest.raises(StorageError):
        fh.check_range(500, 501)
    with pytest.raises(StorageError):
        fh.check_range(-1, 10)


def test_sync_read_blocks_for_round_trip():
    sim, dev, cat = make_env(latency=100e-6, bw=1e6, channels=4)
    fh = cat.create("a", nbytes=1 << 20)
    f = SyncFile(sim, dev, fh)

    def proc(sim):
        yield f.read(0, 1024)
        return sim.now

    assert sim.run_process(proc(sim)) == pytest.approx(100e-6 + 1024 / 1e6)


def test_sync_direct_read_alignment_enforced():
    sim, dev, cat = make_env()
    fh = cat.create("a", nbytes=1 << 20)
    f = SyncFile(sim, dev, fh, direct=True)
    with pytest.raises(AlignmentError):
        f.read(3, 512)
    with pytest.raises(AlignmentError):
        f.read(0, 100)


def test_buffered_sync_read_allows_unaligned():
    sim, dev, cat = make_env()
    fh = cat.create("a", nbytes=1 << 20)
    f = SyncFile(sim, dev, fh, direct=False)

    def proc(sim):
        yield f.read(3, 100)
        return True

    assert sim.run_process(proc(sim))


def test_sync_record_reads_serialise_per_thread():
    sim, dev, cat = make_env(latency=0.0, bw=1e6, channels=8)
    data = np.arange(20, dtype=np.float32).reshape(10, 2)  # 8 B records
    fh = cat.create("feat", data=data)
    f = SyncFile(sim, dev, fh, direct=False)

    def proc(sim):
        ev, rows = f.read_records(np.array([1, 3, 5]), io_size=1000)
        yield ev
        return sim.now, rows

    now, rows = sim.run_process(proc(sim))
    # One thread: 3 chained 1ms reads despite 8 channels.
    assert now == pytest.approx(3e-3)
    assert np.array_equal(rows, data[[1, 3, 5]])


def test_sync_record_reads_direct_round_up_to_sector():
    sim, dev, cat = make_env(latency=0.0, bw=SECTOR_SIZE * 1000, channels=1)
    data = np.zeros((10, 25), dtype=np.float32)  # 100 B records
    fh = cat.create("feat", data=data)
    f = SyncFile(sim, dev, fh, direct=True)

    def proc(sim):
        ev, _ = f.read_records(np.array([0]))
        yield ev
        return sim.now

    # 100 B rounds to one 512 B sector -> exactly 1 ms at 512 B/ms.
    assert sim.run_process(proc(sim)) == pytest.approx(1e-3)


def test_sync_read_records_empty():
    sim, dev, cat = make_env()
    fh = cat.create("feat", data=np.zeros((4, 2), dtype=np.float32))
    f = SyncFile(sim, dev, fh, direct=False)

    def proc(sim):
        ev, rows = f.read_records(np.array([], dtype=np.int64))
        yield ev
        return rows

    assert len(sim.run_process(proc(sim))) == 0


def test_two_sync_threads_share_channels():
    """Two blocked threads double throughput vs one (Appendix B)."""
    def run(num_threads):
        sim, dev, cat = make_env(latency=0.0, bw=1e6, channels=4)
        fh = cat.create("a", nbytes=1 << 20)
        f = SyncFile(sim, dev, fh, direct=False)

        def worker(sim):
            for _ in range(10):
                yield f.read(0, 1000)

        procs = [sim.process(worker(sim)) for _ in range(num_threads)]
        sim.drain(procs)
        return sim.now

    t1, t2 = run(1), run(2)
    assert t2 == pytest.approx(t1)  # same wall time, 2x the bytes
