"""Tests for the OS page cache model and mmap access."""

import numpy as np
import pytest

from repro.memory import HostMemory
from repro.simcore import Simulator
from repro.storage import FileCatalog, MmapArray, PageCache, SSDDevice, SSDSpec
from repro.storage.spec import PAGE_SIZE


def make_env(host_capacity=1 << 20, channels=4, latency=0.0, bw=1e6):
    sim = Simulator()
    dev = SSDDevice(sim, SSDSpec(read_latency=latency,
                                 channel_bandwidth=bw, channels=channels))
    host = HostMemory(capacity=host_capacity)
    cache = PageCache(sim, host, dev)
    cat = FileCatalog()
    return sim, dev, host, cache, cat


def test_miss_then_hit():
    sim, dev, host, cache, cat = make_env()
    fh = cat.create("f", nbytes=1 << 19)

    def proc(sim):
        hits, misses = yield cache.access(fh, np.array([0, 1, 2]))
        t_miss = sim.now
        h2, m2 = yield cache.access(fh, np.array([0, 1, 2]))
        return (hits, misses, h2, m2, t_miss, sim.now)

    hits, misses, h2, m2, t_miss, t_hit = sim.run_process(proc(sim))
    assert (hits, misses) == (0, 3)
    assert (h2, m2) == (3, 0)
    assert t_hit - t_miss < t_miss  # hits are near-free


def test_capacity_tracks_free_host_memory():
    sim, dev, host, cache, cat = make_env(host_capacity=10 * PAGE_SIZE)
    assert cache.capacity_pages == 10
    alloc = host.allocate(4 * PAGE_SIZE)
    assert cache.capacity_pages == 6
    host.free(alloc)
    assert cache.capacity_pages == 10


def test_pinned_allocation_evicts_lru_pages():
    sim, dev, host, cache, cat = make_env(host_capacity=10 * PAGE_SIZE)
    fh = cat.create("f", nbytes=1 << 19)
    cache.warm(fh, np.arange(10))
    assert cache.resident_pages == 10
    host.allocate(5 * PAGE_SIZE)
    assert cache.resident_pages == 5
    # LRU order: oldest pages (0..4) evicted, newest retained.
    assert not cache.contains("f", 0)
    assert cache.contains("f", 9)


def test_lru_refresh_on_hit():
    sim, dev, host, cache, cat = make_env(host_capacity=3 * PAGE_SIZE)
    fh = cat.create("f", nbytes=1 << 19)

    def proc(sim):
        yield cache.access(fh, np.array([0, 1, 2]))
        yield cache.access(fh, np.array([0]))      # refresh page 0
        yield cache.access(fh, np.array([3]))      # evicts LRU = page 1
        return None

    sim.run_process(proc(sim))
    assert cache.contains("f", 0)
    assert not cache.contains("f", 1)
    assert cache.contains("f", 3)


def test_two_files_compete_for_cache():
    """The memory-contention mechanism behind Figure 2."""
    sim, dev, host, cache, cat = make_env(host_capacity=8 * PAGE_SIZE)
    topo = cat.create("topo", nbytes=1 << 19)
    feat = cat.create("feat", nbytes=1 << 19)

    def proc(sim):
        yield cache.access(topo, np.arange(6))
        # Feature flood evicts topology pages.
        yield cache.access(feat, np.arange(8))
        return None

    sim.run_process(proc(sim))
    assert not any(cache.contains("topo", p) for p in range(6))


def test_eviction_counter():
    sim, dev, host, cache, cat = make_env(host_capacity=2 * PAGE_SIZE)
    fh = cat.create("f", nbytes=1 << 19)

    def proc(sim):
        yield cache.access(fh, np.arange(5))
        return None

    sim.run_process(proc(sim))
    assert cache.evictions == 3
    assert cache.resident_pages == 2


def test_miss_time_scales_with_device():
    sim, dev, host, cache, cat = make_env(latency=0.0, bw=1e6, channels=1)
    fh = cat.create("f", nbytes=1 << 19)

    def proc(sim):
        yield cache.access(fh, np.array([0, 1]))
        return sim.now

    # Two 4096 B page reads on one 1 MB/s channel: ~8.2 ms.
    t = sim.run_process(proc(sim))
    assert t == pytest.approx(2 * PAGE_SIZE / 1e6, rel=0.01)


def test_pages_for_records_spanning_boundaries():
    sim, dev, host, cache, cat = make_env()
    data = np.zeros((100, 640), dtype=np.uint8)  # 640 B records
    fh = cat.create("f", data=data)
    # Record 6 occupies bytes [3840, 4480): spans pages 0 and 1.
    pages = cache.pages_for_records(fh, np.array([6]))
    assert list(pages) == [0, 1]
    # Records 0 and 6: pages {0, 1}.
    pages = cache.pages_for_records(fh, np.array([0, 6]))
    assert list(pages) == [0, 1]


def test_pages_for_range():
    sim, dev, host, cache, cat = make_env()
    assert list(cache.pages_for_range(0, 1)) == [0]
    assert list(cache.pages_for_range(PAGE_SIZE - 1, 2)) == [0, 1]
    assert len(cache.pages_for_range(0, 0)) == 0


def test_invalidate_and_flush():
    sim, dev, host, cache, cat = make_env()
    a = cat.create("a", nbytes=1 << 19)
    b = cat.create("b", nbytes=1 << 19)
    cache.warm(a, np.arange(3))
    cache.warm(b, np.arange(3))
    cache.invalidate_file("a")
    assert cache.resident_pages == 3
    cache.flush()
    assert cache.resident_pages == 0


def test_mmap_read_rows_returns_real_data():
    sim, dev, host, cache, cat = make_env()
    data = np.arange(400, dtype=np.float32).reshape(100, 4)
    fh = cat.create("f", data=data)
    arr = MmapArray(sim, cache, fh)
    assert arr.shape == (100, 4)
    assert len(arr) == 100

    def proc(sim):
        ev, rows = arr.read_rows(np.array([5, 50]))
        yield ev
        return rows

    rows = sim.run_process(proc(sim))
    assert np.array_equal(rows, data[[5, 50]])


def test_mmap_second_read_is_cached():
    sim, dev, host, cache, cat = make_env(latency=1e-3)
    data = np.zeros((1000, 128), dtype=np.float32)
    fh = cat.create("f", data=data)
    arr = MmapArray(sim, cache, fh)

    def proc(sim):
        ev, _ = arr.read_rows(np.arange(10))
        yield ev
        t1 = sim.now
        ev, _ = arr.read_rows(np.arange(10))
        yield ev
        return t1, sim.now - t1

    t1, t2 = sim.run_process(proc(sim))
    assert t2 < t1 / 100


def test_mmap_requires_data_plane():
    sim, dev, host, cache, cat = make_env()
    fh = cat.create("f", nbytes=100)
    with pytest.raises(ValueError):
        MmapArray(sim, cache, fh)


def test_mmap_read_range():
    sim, dev, host, cache, cat = make_env()
    data = np.arange(40, dtype=np.float32).reshape(10, 4)
    fh = cat.create("f", data=data)
    arr = MmapArray(sim, cache, fh)

    def proc(sim):
        ev, rows = arr.read_range(2, 5)
        yield ev
        return rows

    assert np.array_equal(sim.run_process(proc(sim)), data[2:5])
