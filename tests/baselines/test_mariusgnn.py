"""Tests for the MariusGNN baseline."""

import numpy as np
import pytest

from repro.baselines import MariusGNN, MariusConfig
from repro.core.base import TrainConfig
from repro.errors import OutOfMemoryError
from repro.graph import make_dataset
from repro.machine import Machine, MachineSpec


def build(host_gb=32, **kw):
    ds = make_dataset("tiny", seed=0)
    m = Machine(MachineSpec.paper_scaled(host_gb=host_gb))
    s = MariusGNN(m, ds, TrainConfig(batch_size=20),
                  MariusConfig(num_partitions=8, **kw))
    return m, s


def test_marius_runs_and_learns():
    m, s = build()
    stats = s.run_epochs(3, eval_every=3)
    assert stats[-1].loss < stats[0].loss * 1.2
    assert stats[-1].val_acc > 0.2


def test_data_preparation_on_critical_path():
    m, s = build()
    stats = s.run_epochs(1)
    assert stats[0].stages.data_prep > 0
    assert stats[0].extra["data_prep_time"] == stats[0].stages.data_prep
    assert stats[0].extra["training_time"] == pytest.approx(
        stats[0].epoch_time - stats[0].stages.data_prep)


def test_data_prep_repeats_every_epoch():
    m, s = build()
    stats = s.run_epochs(2)
    assert stats[0].stages.data_prep > 0
    assert stats[1].stages.data_prep > 0


def test_every_train_seed_used_once_per_epoch():
    m, s = build()
    stats = s.run_epochs(1)
    # All trainable seeds consumed: batch count covers the training set.
    total_seeds = sum(len(p) for p in s._seeds_by_part)
    assert total_seeds == len(s.dataset.train_idx)
    assert stats[0].num_batches >= total_seeds // s.train_cfg.batch_size


def test_low_iowait_during_training_phase():
    """Fig. 3c: MariusGNN's in-epoch I/O is minimal after data prep."""
    m, s = build()
    stats = s.run_epochs(1)
    prep_end = stats[0].stages.data_prep
    io_after = m.probe.io.utilization(prep_end, m.sim.now)
    io_during = m.probe.io.utilization(0.0, prep_end)
    assert io_during > io_after


def test_buffer_partitions_respect_memory():
    m, s = build(host_gb=32)
    assert 2 <= s.buffer_partitions <= 8
    m2, s2 = build(host_gb=512)
    assert s2.buffer_partitions >= s.buffer_partitions


def test_oom_when_scratch_exceeds_host():
    ds = make_dataset("tiny", seed=0, dim=768)  # big feature table
    m = Machine(MachineSpec.paper_scaled(host_gb=1))
    with pytest.raises(OutOfMemoryError):
        MariusGNN(m, ds, TrainConfig(batch_size=20),
                  MariusConfig(num_partitions=8))


def test_restricted_sampling_drops_nonresident_edges():
    m, s = build()
    from repro.sampling import NeighborSampler
    sampler = NeighborSampler(s.dataset.graph, s.fanouts,
                              np.random.default_rng(0))
    sub = sampler.sample(s.dataset.train_idx[:10])
    resident = np.zeros(8, dtype=bool)
    resident[0] = True  # only partition 0 resident
    restricted = s._restrict_to_buffer(sub, resident)
    assert restricted.total_edges() <= sub.total_edges()
    # Every surviving edge has a resident source.
    for layer in restricted.layers:
        src_global = restricted.all_nodes[layer.src_pos]
        assert np.all(resident[s.part[src_global]])


def test_explicit_buffer_partitions():
    m, s = build(buffer_partitions=3)
    assert s.buffer_partitions == 3


def test_config_validation():
    with pytest.raises(ValueError):
        MariusConfig(num_partitions=0)
    with pytest.raises(ValueError):
        MariusConfig(buffer_partitions=1)
