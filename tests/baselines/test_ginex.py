"""Tests for the Ginex baseline: Belady plan, neighbor cache, system."""

import numpy as np
import pytest

from repro.baselines import Ginex, GinexConfig
from repro.baselines.ginex import NeighborCache, belady_plan
from repro.core.base import TrainConfig
from repro.errors import OutOfMemoryError
from repro.graph import make_dataset
from repro.machine import Machine, MachineSpec


# ----------------------------------------------------------------------
# Belady plan
# ----------------------------------------------------------------------
def simulate_plan(batches, capacity):
    """Replay a plan and return total misses + max cache occupancy."""
    initial, miss_lists, evict_lists = belady_plan(batches, capacity)
    cache = set(map(int, initial))
    misses = 0
    max_occ = len(cache)
    for nodes, miss, evict in zip(batches, miss_lists, evict_lists):
        for v in map(int, nodes):
            if v not in cache:
                assert v in set(map(int, miss)), "unplanned miss"
        misses += len(miss)
        cache.update(map(int, miss))
        for v in map(int, evict):
            cache.remove(v)
        assert len(cache) <= capacity
        max_occ = max(max_occ, len(cache))
    return misses, max_occ


def test_belady_no_misses_when_everything_fits():
    batches = [np.array([1, 2]), np.array([2, 3]), np.array([1, 3])]
    misses, _ = simulate_plan(batches, capacity=10)
    assert misses == 0  # initial prefetch covers all


def test_belady_respects_capacity():
    rng = np.random.default_rng(0)
    batches = [rng.choice(50, size=8, replace=False) for _ in range(12)]
    simulate_plan(batches, capacity=10)  # asserts inside


def test_belady_beats_lru_on_adversarial_trace():
    """Optimality spot-check: Belady <= LRU misses on a looping trace."""
    n, cap = 12, 8
    batches = [np.arange(n)[i % 2::2] for i in range(10)]
    # Also a cyclic scan, LRU's worst case:
    batches += [np.arange(i, i + 6) % n for i in range(8)]

    def lru_misses(batches, cap):
        from collections import OrderedDict
        cache = OrderedDict()
        misses = 0
        for nodes in batches:
            for v in map(int, nodes):
                if v in cache:
                    cache.move_to_end(v)
                else:
                    misses += 1
                    cache[v] = None
                    if len(cache) > cap:
                        cache.popitem(last=False)
        return misses

    opt, _ = simulate_plan(batches, cap)
    # LRU starts cold; give Belady no initial-prefetch advantage by
    # counting its prefetch as misses too.
    initial, _, _ = belady_plan(batches, cap)
    assert opt + len(initial) <= lru_misses(batches, cap) + len(initial)


def test_belady_validation():
    with pytest.raises(ValueError):
        belady_plan([np.array([1])], capacity=0)


# ----------------------------------------------------------------------
# Neighbor cache
# ----------------------------------------------------------------------
def test_neighbor_cache_respects_budget():
    ds = make_dataset("tiny", seed=0)
    nc = NeighborCache(ds.graph, capacity_bytes=1 << 14)
    assert nc.bytes_used <= 1 << 14
    assert len(nc.cached_nodes) > 0


def test_neighbor_cache_prefers_frequently_sampled_nodes():
    ds = make_dataset("tiny", seed=0)
    nc = NeighborCache(ds.graph, capacity_bytes=1 << 15)
    out_deg = np.bincount(ds.graph.indices, minlength=ds.num_nodes)
    cached_mean = out_deg[nc.cached_nodes].mean()
    assert cached_mean > out_deg.mean()


def test_neighbor_cache_split():
    ds = make_dataset("tiny", seed=0)
    nc = NeighborCache(ds.graph, capacity_bytes=1 << 14)
    frontier = np.arange(100)
    cached, uncached = nc.split(frontier)
    assert len(cached) + len(uncached) == 100
    assert set(cached).issubset(set(nc.cached_nodes))


def test_neighbor_cache_zero_budget():
    ds = make_dataset("tiny", seed=0)
    nc = NeighborCache(ds.graph, capacity_bytes=0)
    assert len(nc.cached_nodes) == 0


# ----------------------------------------------------------------------
# System
# ----------------------------------------------------------------------
def small_cfg(**kw):
    base = dict(neighbor_cache_bytes=1 << 18, feature_cache_bytes=1 << 21,
                superbatch_size=10)
    base.update(kw)
    return GinexConfig(**base)


def build(host_gb=32, **kw):
    ds = make_dataset("tiny", seed=0)
    m = Machine(MachineSpec.paper_scaled(host_gb=host_gb))
    s = Ginex(m, ds, TrainConfig(batch_size=20), small_cfg(), **kw)
    return m, s


def test_ginex_runs_and_learns():
    m, s = build()
    stats = s.run_epochs(3, eval_every=3)
    assert stats[-1].loss < stats[0].loss
    assert stats[-1].val_acc > 0.2


def test_ginex_feature_cache_hits_accumulate():
    m, s = build()
    stats = s.run_epochs(2)
    assert stats[-1].reused_nodes > 0  # feature-cache hits
    # loaded + reused covers every sampled node.
    assert stats[-1].loaded_nodes >= 0


def test_ginex_sample_only_close_to_all():
    """Fig. 2: Ginex-only ~ Ginex-all (separate caches)."""
    ds = make_dataset("tiny", seed=0)
    m1 = Machine(MachineSpec.paper_scaled(host_gb=32))
    only = Ginex(m1, ds, TrainConfig(batch_size=20), small_cfg(),
                 sample_only=True)
    t_only = only.run_epochs(2)[-1].stages.sample
    ds2 = make_dataset("tiny", seed=0)
    m2 = Machine(MachineSpec.paper_scaled(host_gb=32))
    full = Ginex(m2, ds2, TrainConfig(batch_size=20), small_cfg())
    t_full = full.run_epochs(2)[-1].stages.sample
    assert t_full < 2.0 * t_only  # far below PyG+'s 5.4x blow-up


def test_ginex_oom_when_caches_exceed_host():
    ds = make_dataset("tiny", seed=0)
    m = Machine(MachineSpec.paper_scaled(host_gb=1))
    with pytest.raises(OutOfMemoryError):
        Ginex(m, ds, TrainConfig(batch_size=20),
              GinexConfig(neighbor_cache_bytes=1 << 20,
                          feature_cache_bytes=1 << 21, superbatch_size=10))


def test_ginex_oom_when_feature_cache_below_working_set():
    ds = make_dataset("tiny", seed=0)
    m = Machine(MachineSpec.paper_scaled(host_gb=32))
    with pytest.raises(OutOfMemoryError, match="ginex-feature-cache"):
        Ginex(m, ds, TrainConfig(batch_size=20),
              GinexConfig(neighbor_cache_bytes=1 << 16,
                          feature_cache_bytes=1 << 12,  # ~32 entries
                          superbatch_size=10))


def test_ginex_for_host_sizing():
    cfg = GinexConfig.for_host(100_000, fraction=0.85)
    assert cfg.neighbor_cache_bytes + cfg.feature_cache_bytes == 85_000
    assert cfg.feature_cache_bytes == 4 * cfg.neighbor_cache_bytes
    cfg2 = GinexConfig.for_host(100_000, superbatch_size=7)
    assert cfg2.superbatch_size == 7


def test_ginex_config_validation():
    with pytest.raises(ValueError):
        GinexConfig(feature_cache_bytes=0)
    with pytest.raises(ValueError):
        GinexConfig(superbatch_size=0)
    with pytest.raises(ValueError):
        GinexConfig(sample_workers=0)
