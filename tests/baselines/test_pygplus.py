"""Tests for the PyG+ baseline."""

import numpy as np
import pytest

from repro.baselines import PyGPlus, PyGPlusConfig
from repro.core.base import TrainConfig
from repro.errors import OutOfMemoryError, OutOfTimeError
from repro.graph import make_dataset
from repro.machine import Machine, MachineSpec


def build(host_gb=32, sample_only=False, **cfg):
    ds = make_dataset("tiny", seed=0)
    m = Machine(MachineSpec.paper_scaled(host_gb=host_gb))
    s = PyGPlus(m, ds, TrainConfig(batch_size=20),
                PyGPlusConfig(**cfg), sample_only=sample_only)
    return m, s


def test_epoch_runs_and_learns():
    m, s = build()
    stats = s.run_epochs(3, eval_every=3)
    assert len(stats) == 3
    assert stats[-1].loss < stats[0].loss
    assert stats[-1].val_acc > 0.2
    s.shutdown()


def test_feature_faults_go_through_page_cache():
    m, s = build()
    stats = s.run_epochs(1)
    # Both topology and feature pages fault through the shared cache.
    assert stats[0].cache_misses > 0
    assert m.page_cache.misses > 0
    s.shutdown()


def test_sample_only_mode_skips_extract_and_train():
    m, s = build(sample_only=True)
    stats = s.run_epochs(1)
    assert stats[0].stages.extract == 0.0
    assert stats[0].stages.train == 0.0
    assert stats[0].stages.sample > 0.0
    assert np.isnan(stats[0].loss)
    s.shutdown()


def test_sample_only_faster_than_full_epoch():
    """The Fig. 2 mechanism: extraction slows sampling down."""
    m1, only = build(sample_only=True)
    t_only = only.run_epochs(2)[-1].stages.sample
    only.shutdown()
    m2, full = build(sample_only=False)
    t_full = full.run_epochs(2)[-1].stages.sample
    full.shutdown()
    assert t_full >= t_only * 0.9  # contention never helps sampling


def test_more_memory_speeds_up_pygplus():
    """Fig. 9: PyG+ is highly sensitive to page-cache size.

    The tiny dataset's working set is ~0.4 MB; a 0.3 MB-scaled host
    forces steady-state thrashing while a large host caches everything
    after the first epoch.
    """
    _, small = build(host_gb=0.3)
    s_small = small.run_epochs(2)[-1]
    small.shutdown()
    _, big = build(host_gb=512)
    s_big = big.run_epochs(2)[-1]
    big.shutdown()
    assert s_big.epoch_time < s_small.epoch_time
    assert s_big.cache_misses < s_small.cache_misses


def test_gpu_oom_on_tiny_device():
    ds = make_dataset("tiny", seed=0)
    m = Machine(MachineSpec.paper_scaled(host_gb=32, gpu_capacity=1 << 14))
    with pytest.raises(OutOfMemoryError):
        s = PyGPlus(m, ds, TrainConfig(batch_size=20))
        s.run_epochs(1)


def test_out_of_time():
    _, s = build()
    with pytest.raises(OutOfTimeError):
        s.run_epochs(10, time_budget=1e-9)


def test_config_validation():
    with pytest.raises(ValueError):
        PyGPlusConfig(num_workers=0)
    with pytest.raises(ValueError):
        PyGPlusConfig(prefetch_depth=0)
