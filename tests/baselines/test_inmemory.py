"""Tests for the in-memory reference system."""

import pytest

from repro.baselines import InMemory
from repro.bench.runner import get_dataset, run_system
from repro.core.base import TrainConfig
from repro.errors import OutOfMemoryError
from repro.graph import make_dataset
from repro.machine import Machine, MachineSpec


def test_inmemory_runs_and_learns():
    ds = make_dataset("tiny", seed=0)
    m = Machine(MachineSpec.paper_scaled(host_gb=32))
    s = InMemory(m, ds, TrainConfig(batch_size=20))
    stats = s.run_epochs(3, eval_every=3)
    assert stats[-1].loss < stats[0].loss
    assert stats[-1].val_acc > 0.2
    # Zero disk reads during training (everything resident).
    assert m.ssd.bytes_read == 0


def test_inmemory_ooms_when_dataset_exceeds_host():
    """The regime the paper targets: data does not fit in memory."""
    ds = get_dataset("papers100m-mini", scale=0.15)
    res = run_system("in-memory", ds, TrainConfig(batch_size=10),
                     epochs=1, data_scale=0.15)
    assert res.status == "OOM"   # 66 MB-equivalent data vs 32 MB host


def test_inmemory_is_the_lower_bound():
    """GNNDrive can never beat the no-disk ideal on the same workload."""
    ds = get_dataset("tiny")
    tc = TrainConfig(batch_size=20)
    ideal = run_system("in-memory", ds, tc, host_gb=512, epochs=2)
    gnnd = run_system("gnndrive-gpu", ds, tc, host_gb=512, epochs=2)
    assert ideal.ok and gnnd.ok
    assert ideal.epoch_time <= gnnd.epoch_time * 1.05
