"""Gradient and semantics tests for the autograd operators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import (
    Tensor,
    add,
    concat_cols,
    dropout,
    edge_aggregate,
    edge_score,
    elu,
    gather_rows,
    leaky_relu,
    log_softmax,
    matmul,
    mul_scalar,
    no_grad,
    relu,
    segment_softmax,
    softmax_cross_entropy,
    spmm,
)
from tests.tensor.gradcheck import check_grad

RNG = np.random.default_rng(0)


def scalar(t):
    """Reduce any tensor to a scalar loss via a fixed weighting."""
    w = np.arange(t.data.size, dtype=np.float32).reshape(t.data.shape) / t.data.size
    return softmax_like_sum(t, w)


def softmax_like_sum(t, w):
    # Weighted sum as matmul-free scalar: use mul + matmul trick.
    flat = t.data.reshape(-1)
    # Build via autograd ops to keep the tape: t * w summed = (t flattened) @ w
    from repro.tensor.ops import _make  # internal, fine for tests

    def backward(g):
        if t.requires_grad:
            t.accumulate_grad(np.full_like(t.data, 0) + w * float(g))

    return _make(np.float32((t.data * w).sum()), (t,), backward, "wsum")


def test_add_broadcast_bias_grad():
    check_grad(
        lambda p: scalar(add(p["x"], p["b"])),
        {"x": RNG.standard_normal((4, 3)), "b": RNG.standard_normal(3)},
    )


def test_matmul_grad():
    check_grad(
        lambda p: scalar(matmul(p["a"], p["b"])),
        {"a": RNG.standard_normal((4, 5)), "b": RNG.standard_normal((5, 2))},
    )


def test_relu_grad_and_value():
    x = Tensor(np.array([[-1.0, 2.0]], dtype=np.float32), requires_grad=True)
    y = relu(x)
    assert np.array_equal(y.data, [[0.0, 2.0]])
    check_grad(lambda p: scalar(relu(p["x"])),
               {"x": RNG.standard_normal((5, 4)) + 0.1})


def test_leaky_relu_grad():
    check_grad(lambda p: scalar(leaky_relu(p["x"], 0.2)),
               {"x": RNG.standard_normal((5, 4)) + 0.05})


def test_elu_value_and_grad():
    x = Tensor(np.array([-1.0, 1.0], dtype=np.float32), requires_grad=True)
    y = elu(x)
    assert y.data[0] == pytest.approx(np.exp(-1) - 1, rel=1e-5)
    assert y.data[1] == pytest.approx(1.0)
    check_grad(lambda p: scalar(elu(p["x"])),
               {"x": RNG.standard_normal((4, 3))})


def test_mul_scalar_grad():
    check_grad(lambda p: scalar(mul_scalar(p["x"], 2.5)),
               {"x": RNG.standard_normal((3, 3))})


def test_gather_rows_grad_with_repeats():
    check_grad(
        lambda p: scalar(gather_rows(p["x"], np.array([0, 2, 2, 1]))),
        {"x": RNG.standard_normal((4, 3))},
    )


def test_concat_cols_grad():
    check_grad(
        lambda p: scalar(concat_cols(p["a"], p["b"])),
        {"a": RNG.standard_normal((3, 2)), "b": RNG.standard_normal((3, 4))},
    )


def test_concat_cols_shape_mismatch():
    with pytest.raises(ValueError):
        concat_cols(Tensor(np.zeros((2, 2))), Tensor(np.zeros((3, 2))))


def test_spmm_matches_dense_and_grad():
    adj = sp.random(6, 5, density=0.5, random_state=0, format="csr",
                    dtype=np.float32)
    x = RNG.standard_normal((5, 3)).astype(np.float32)
    out = spmm(adj, Tensor(x))
    np.testing.assert_allclose(out.data, adj.toarray() @ x, rtol=1e-5)
    check_grad(lambda p: scalar(spmm(adj, p["x"])),
               {"x": RNG.standard_normal((5, 3))})


def test_log_softmax_rows_sum_to_one():
    x = Tensor(RNG.standard_normal((4, 7)).astype(np.float32),
               requires_grad=True)
    y = log_softmax(x)
    np.testing.assert_allclose(np.exp(y.data).sum(axis=1), np.ones(4),
                               rtol=1e-5)
    check_grad(lambda p: scalar(log_softmax(p["x"])),
               {"x": RNG.standard_normal((4, 7))})


def test_cross_entropy_value_and_grad():
    logits = np.array([[10.0, 0.0], [0.0, 10.0]], dtype=np.float32)
    labels = np.array([0, 1])
    loss = softmax_cross_entropy(Tensor(logits), labels)
    assert float(loss.data) < 1e-3
    check_grad(
        lambda p: softmax_cross_entropy(p["x"], np.array([1, 0, 2])),
        {"x": RNG.standard_normal((3, 4))},
    )


def test_cross_entropy_label_shape_validation():
    with pytest.raises(ValueError):
        softmax_cross_entropy(Tensor(np.zeros((3, 4))), np.array([0, 1]))


def test_dropout_train_and_eval():
    x = Tensor(np.ones((100, 10), dtype=np.float32), requires_grad=True)
    y = dropout(x, 0.5, rng=np.random.default_rng(0), training=True)
    kept = y.data != 0
    assert 0.3 < kept.mean() < 0.7
    np.testing.assert_allclose(y.data[kept], 2.0)  # inverted scaling
    y_eval = dropout(x, 0.5, training=False)
    assert y_eval is x
    with pytest.raises(ValueError):
        dropout(x, 1.0)


def test_segment_softmax_normalises_per_segment():
    scores = Tensor(RNG.standard_normal(7).astype(np.float32),
                    requires_grad=True)
    seg = np.array([0, 0, 1, 1, 1, 2, 2])
    alpha = segment_softmax(scores, seg, num_segments=3)
    for s in range(3):
        assert alpha.data[seg == s].sum() == pytest.approx(1.0, rel=1e-5)
    check_grad(
        lambda p: scalar(segment_softmax(p["s"], seg, 3)),
        {"s": RNG.standard_normal(7)},
    )


def test_segment_softmax_validates_ndim():
    with pytest.raises(ValueError):
        segment_softmax(Tensor(np.zeros((2, 2))), np.array([0, 1]), 2)


def test_edge_score_grad_all_params():
    src_idx = np.array([0, 1, 2, 0])
    dst_idx = np.array([0, 0, 1, 1])
    check_grad(
        lambda p: scalar(edge_score(p["h_src"], p["h_dst"], p["a_src"],
                                    p["a_dst"], src_idx, dst_idx)),
        {
            "h_src": RNG.standard_normal((3, 4)),
            "h_dst": RNG.standard_normal((2, 4)),
            "a_src": RNG.standard_normal(4),
            "a_dst": RNG.standard_normal(4),
        },
    )


def test_edge_aggregate_value_and_grad():
    src_idx = np.array([0, 1, 2])
    dst_idx = np.array([0, 0, 1])
    alpha = np.array([0.5, 0.5, 1.0], dtype=np.float32)
    h = np.eye(3, dtype=np.float32)
    out = edge_aggregate(Tensor(alpha), Tensor(h), src_idx, dst_idx, 2)
    np.testing.assert_allclose(out.data[0], [0.5, 0.5, 0.0])
    np.testing.assert_allclose(out.data[1], [0.0, 0.0, 1.0])
    check_grad(
        lambda p: scalar(edge_aggregate(p["alpha"], p["h"], src_idx,
                                        dst_idx, 2)),
        {"alpha": RNG.random(3) + 0.1, "h": RNG.standard_normal((3, 3))},
    )


def test_shared_subexpression_grads_accumulate():
    x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
    y = add(x, x)  # dy/dx = 2
    loss = softmax_like_sum(y, np.ones((2, 2), dtype=np.float32))
    loss.backward()
    np.testing.assert_allclose(x.grad, 2 * np.ones((2, 2)))


def test_no_grad_suppresses_tape():
    x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
    with no_grad():
        y = add(x, x)
    assert not y.requires_grad


def test_backward_requires_scalar_or_seed():
    x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
    y = add(x, x)
    with pytest.raises(RuntimeError):
        y.backward()
    y.backward(np.ones((2, 2), dtype=np.float32))
    assert x.grad is not None


def test_backward_on_non_grad_tensor_raises():
    x = Tensor(np.ones(2))
    with pytest.raises(RuntimeError):
        x.backward()


def test_float64_is_coerced_to_float32():
    t = Tensor(np.zeros(3, dtype=np.float64))
    assert t.data.dtype == np.float32
