"""Finite-difference gradient checking helper."""

import numpy as np

from repro.tensor import Tensor


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar fn w.r.t. x (float64 probe)."""
    x = x.astype(np.float64)
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        orig = x[i]
        x[i] = orig + eps
        f_plus = fn(x.astype(np.float32))
        x[i] = orig - eps
        f_minus = fn(x.astype(np.float32))
        x[i] = orig
        g[i] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return g


def check_grad(build_loss, params: dict, rtol: float = 5e-2,
               atol: float = 5e-3) -> None:
    """Compare autograd gradients against finite differences.

    Parameters
    ----------
    build_loss:
        ``build_loss(tensors: dict) -> Tensor`` returning a scalar loss.
    params:
        name -> initial numpy value; every entry is grad-checked.
    """
    tensors = {k: Tensor(v.astype(np.float32), requires_grad=True)
               for k, v in params.items()}
    loss = build_loss(tensors)
    loss.backward()

    for name, value in params.items():
        def fn(x, name=name):
            probe = {k: Tensor(v.astype(np.float32), requires_grad=False)
                     for k, v in params.items()}
            probe[name] = Tensor(x, requires_grad=False)
            return float(build_loss(probe).data)

        num = numeric_grad(fn, value.copy())
        ana = tensors[name].grad
        assert ana is not None, f"no gradient for {name}"
        np.testing.assert_allclose(
            ana, num, rtol=rtol, atol=atol,
            err_msg=f"gradient mismatch for parameter {name!r}")
