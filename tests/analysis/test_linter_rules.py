"""Per-rule fixture tests for the determinism linter.

Each rule gets (a) a snippet that triggers it, (b) a closely related
snippet that must NOT trigger it, and (c) a suppression check.
"""

import json
import textwrap

from repro.analysis import RULES, lint_source, render_json


def codes(source: str, **kw):
    src = textwrap.dedent(source)
    return [f.code for f in lint_source(src, "snippet.py", **kw)]


# ----------------------------------------------------------------------
# DET101 — wall clock
# ----------------------------------------------------------------------
def test_det101_time_module():
    assert codes("""
        import time
        t = time.perf_counter()
    """) == ["DET101"]


def test_det101_from_import_and_alias():
    assert codes("""
        from time import monotonic
        import time as walltime
        a = monotonic()
        b = walltime.time()
    """) == ["DET101", "DET101"]


def test_det101_datetime_now():
    assert codes("""
        from datetime import datetime
        stamp = datetime.now()
    """) == ["DET101"]


def test_det101_not_fooled_by_other_modules():
    # `sim.time()` / `self.time` are not the stdlib time module.
    assert codes("""
        class Clock:
            def time(self):
                return 0.0
        c = Clock()
        t = c.time()
    """) == []


# ----------------------------------------------------------------------
# DET102 — global / unseeded RNG
# ----------------------------------------------------------------------
def test_det102_random_module():
    assert codes("""
        import random
        x = random.random()
    """) == ["DET102"]


def test_det102_legacy_numpy_global():
    assert codes("""
        import numpy as np
        np.random.seed(0)
        x = np.random.rand(3)
    """) == ["DET102", "DET102"]


def test_det102_unseeded_default_rng():
    assert codes("""
        import numpy as np
        from numpy.random import default_rng
        a = np.random.default_rng()
        b = default_rng(None)
    """) == ["DET102", "DET102"]


def test_det102_seeded_generators_are_fine():
    assert codes("""
        import numpy as np
        a = np.random.default_rng(42)
        b = np.random.default_rng(seed=7)
        x = a.random(3)
    """) == []


# ----------------------------------------------------------------------
# DET103 — unordered iteration into the scheduler
# ----------------------------------------------------------------------
def test_det103_set_literal_scheduling():
    assert codes("""
        def kick(sim, a, b):
            for ev in {a, b}:
                ev.succeed(None)
    """) == ["DET103"]


def test_det103_keys_view_scheduling():
    assert codes("""
        def kick(sim, waiters):
            for key in waiters.keys():
                waiters[key].succeed(None)
    """) == ["DET103"]


def test_det103_list_iteration_is_fine():
    assert codes("""
        def kick(sim, events):
            for ev in sorted(events):
                ev.succeed(None)
    """) == []


def test_det103_set_iteration_without_scheduling_is_fine():
    assert codes("""
        def total(sizes):
            acc = 0
            for s in {1, 2, 3}:
                acc += s
            return acc
    """) == []


def test_det103_comprehension_over_set():
    assert codes("""
        def kick(sim, pending):
            evs = [sim.timeout(t) for t in set(pending)]
            return evs
    """) == ["DET103"]


# ----------------------------------------------------------------------
# DET104 — float equality on timestamps
# ----------------------------------------------------------------------
def test_det104_timestamp_equality():
    assert codes("""
        def same(sim, deadline):
            return sim.now == deadline
    """) == ["DET104"]


def test_det104_suffix_names():
    assert codes("""
        def check(done_time, t_submit):
            return done_time != t_submit
    """) == ["DET104"]


def test_det104_none_checks_and_ordering_are_fine():
    assert codes("""
        def check(sim, deadline, start_time):
            a = deadline is None
            b = start_time == None  # noqa: E711 - sentinel check
            c = sim.now < deadline
            return a or b or c
    """) == []


def test_det104_non_timestamp_names_are_fine():
    assert codes("""
        def check(count, other):
            return count == other
    """) == []


# ----------------------------------------------------------------------
# DET105 — broad except without re-raise
# ----------------------------------------------------------------------
def test_det105_bare_and_broad_except():
    assert codes("""
        def f():
            try:
                g()
            except:
                pass

        def h():
            try:
                g()
            except Exception as exc:
                log(exc)
    """) == ["DET105", "DET105"]


def test_det105_reraise_is_fine():
    assert codes("""
        def f():
            try:
                g()
            except BaseException:
                cleanup()
                raise
    """) == []


def test_det105_specific_exception_is_fine():
    assert codes("""
        def f():
            try:
                g()
            except ValueError:
                pass
    """) == []


# ----------------------------------------------------------------------
# DET106 — mutable defaults
# ----------------------------------------------------------------------
def test_det106_literal_and_ctor_defaults():
    assert codes("""
        def f(items=[], table={}, seen=set()):
            return items, table, seen
    """) == ["DET106", "DET106", "DET106"]


def test_det106_kwonly_default():
    assert codes("""
        def f(*, queue=list()):
            return queue
    """) == ["DET106"]


def test_det106_none_and_immutable_defaults_are_fine():
    assert codes("""
        def f(items=None, n=3, name="x", pair=(1, 2)):
            return items or []
    """) == []


# ----------------------------------------------------------------------
# DET107 — non-event yields in process generators
# ----------------------------------------------------------------------
def test_det107_proc_suffix_yields_literal():
    assert codes("""
        def worker_proc(sim):
            yield 1.5
    """) == ["DET107"]


def test_det107_bare_yield():
    assert codes("""
        def worker_proc(sim):
            yield
    """) == ["DET107"]


def test_det107_registered_via_sim_process():
    assert codes("""
        def worker(sim):
            yield (1, 2)

        def start(sim):
            sim.process(worker(sim))
    """) == ["DET107"]


def test_det107_event_yields_are_fine():
    assert codes("""
        def worker_proc(sim, q):
            yield sim.timeout(1.0)
            item = yield q.get()
            return item
    """) == []


def test_det107_non_process_generators_are_fine():
    # Plain data generators may yield anything.
    assert codes("""
        def pairs(n):
            for i in range(n):
                yield (i, i + 1)
    """) == []


def test_det107_nested_function_yields_not_attributed():
    # The nested helper's yields belong to a different generator.
    assert codes("""
        def worker_proc(sim):
            def gen():
                yield 1
            for v in gen():
                yield sim.timeout(v)
    """) == []


# ----------------------------------------------------------------------
# DET108 — ordering from id()/hash() tie-breaks
# ----------------------------------------------------------------------
def test_det108_sorted_key_id():
    assert codes("""
        ordered = sorted(events, key=id)
    """) == ["DET108"]


def test_det108_sort_key_lambda_id():
    assert codes("""
        events.sort(key=lambda e: (e.time, id(e)))
    """) == ["DET108"]


def test_det108_min_with_hash_tiebreak():
    assert codes("""
        first = min(ready, key=lambda p: (p.priority, hash(p)))
    """) == ["DET108"]


def test_det108_heapq_push_id():
    assert codes("""
        import heapq
        heapq.heappush(heap, (t, id(ev), ev))
    """) == ["DET108"]


def test_det108_heapq_alias():
    assert codes("""
        import heapq as hq
        hq.heappush(heap, (t, id(ev), ev))
    """) == ["DET108"]


def test_det108_id_comparison():
    assert codes("""
        swap = id(a) < id(b)
    """) == ["DET108"]


def test_det108_id_equality_is_fine():
    # Identity checks are deterministic; only *ordering* by id is not.
    assert codes("""
        same = id(a) == id(b)
        ordered = sorted(events, key=lambda e: e.seq)
    """) == []


def test_det108_id_outside_ordering_is_fine():
    assert codes("""
        registry[id(obj)] = obj
        label = f"obj-{id(obj)}"
    """) == []


def test_det108_suppression():
    assert codes("""
        ordered = sorted(xs, key=id)  # sim-lint: disable=DET108 -- display only
    """) == []


# ----------------------------------------------------------------------
# Suppression syntax
# ----------------------------------------------------------------------
def test_suppression_same_line():
    assert codes("""
        import time
        t = time.time()  # sim-lint: disable=DET101 -- harness wall clock
    """) == []


def test_suppression_comment_line_above():
    assert codes("""
        import time
        # sim-lint: disable=DET101 -- harness wall clock
        t = time.time()
    """) == []


def test_suppression_wrong_code_does_not_apply():
    assert codes("""
        import time
        t = time.time()  # sim-lint: disable=DET102 -- wrong code
    """) == ["DET101"]


def test_suppression_all_wildcard():
    assert codes("""
        import random
        x = random.random()  # sim-lint: disable=all -- fixture
    """) == []


def test_no_suppress_keeps_marked_findings():
    findings = lint_source(textwrap.dedent("""
        import time
        t = time.time()  # sim-lint: disable=DET101 -- audit me
    """), "snippet.py", keep_suppressed=True)
    assert [f.code for f in findings] == ["DET101"]
    assert findings[0].suppressed


# ----------------------------------------------------------------------
# Output modes / catalog
# ----------------------------------------------------------------------
def test_render_json_counts():
    findings = lint_source("import time\nt = time.time()\n", "x.py")
    payload = json.loads(render_json(findings, files_scanned=1))
    assert payload["counts"] == {"DET101": 1}
    assert payload["files_scanned"] == 1
    assert payload["findings"][0]["code"] == "DET101"


def test_rule_catalog_is_complete():
    assert set(RULES) == {f"DET10{i}" for i in range(1, 9)}


def test_race_rule_catalog_is_complete():
    from repro.analysis.races import RACE_RULES

    assert set(RACE_RULES) == {f"RACE20{i}" for i in range(1, 7)}


def test_cli_rules_and_clean_exit(tmp_path, capsys):
    from repro.analysis.linter import main

    assert main(["--rules"]) == 0
    out = capsys.readouterr().out
    assert "DET101" in out and "DET107" in out

    good = tmp_path / "clean.py"
    good.write_text("x = 1\n")
    assert main([str(good)]) == 0

    bad = tmp_path / "dirty.py"
    bad.write_text("import random\nx = random.random()\n")
    assert main([str(bad)]) == 1
    assert main([str(bad), "--ignore", "DET102"]) == 0
    assert main([str(bad), "--select", "DET101"]) == 0
    assert main(["--select", "NOPE", str(bad)]) == 2
