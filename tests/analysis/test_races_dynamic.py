"""Runtime race-detector tests: conflicts, waivers, deadlock cycles.

The fixture shared object is a class literally named ``AsyncRing`` so
the detector's kind table classifies its methods — and, unlike the
production storage kinds, ``AsyncRing`` carries no default waiver, so
seeded conflicts surface as *unwaived*.
"""

import pytest

from repro.analysis import RaceDetector, SimSanitizer
from repro.errors import SimulationError
from repro.simcore.engine import Simulator
from repro.simcore.resources import Resource, Store


class AsyncRing:
    """Racy fixture: name-matched to the detector's kind table."""

    def __init__(self):
        self.name = "fixture-ring"
        self.submitted = []

    def submit(self, item):
        self.submitted.append(item)


def _armed_sim(**kw):
    sim = Simulator()
    san = SimSanitizer(strict=False)
    san.sim = sim
    sim.sanitizer = san
    det = san.enable_races(sim=sim, **kw)
    return sim, det


def test_seeded_racy_pair_is_flagged():
    sim, det = _armed_sim()
    ring = AsyncRing()
    assert det.watch(ring)

    def racer(tag):
        yield sim.timeout(1.0)
        ring.submit(tag)

    pa = sim.process(racer("a"), name="racer-a")
    pb = sim.process(racer("b"), name="racer-b")
    sim.drain([pa, pb])
    det.finalize()

    assert len(det.unwaived) == 1
    ev = det.conflicts[0]
    assert {ev.proc_a, ev.proc_b} == {"racer-a", "racer-b"}
    assert ev.mode_a == ev.mode_b == "w"
    assert ev.field_a == ev.field_b == "submit"
    rendered = ev.render()
    assert "seq order resolved" in rendered
    assert "racer-a" in rendered and "racer-b" in rendered
    # Both stacks point into this test file.
    assert ev.stack_a and ev.stack_b


def test_waiver_suppresses_but_records():
    sim, det = _armed_sim(
        waivers={("AsyncRing", "*", "*"): "fixture waiver under test"})
    ring = AsyncRing()
    det.watch(ring)

    def racer(tag):
        yield sim.timeout(1.0)
        ring.submit(tag)

    procs = [sim.process(racer(t), name=f"racer-{t}") for t in "ab"]
    sim.drain(procs)
    det.finalize()
    assert det.conflicts and not det.unwaived
    assert det.conflicts[0].waived_by == "fixture waiver under test"


def test_accesses_in_different_cohorts_do_not_conflict():
    sim, det = _armed_sim()
    ring = AsyncRing()
    det.watch(ring)

    def racer(tag, delay):
        yield sim.timeout(delay)
        ring.submit(tag)

    procs = [sim.process(racer("a", 1.0), name="a"),
             sim.process(racer("b", 2.0), name="b")]
    sim.drain(procs)
    det.finalize()
    assert not det.conflicts


def test_main_thread_accesses_never_race():
    sim, det = _armed_sim()
    ring = AsyncRing()
    det.watch(ring)

    def racer():
        yield sim.timeout(0.0)
        ring.submit("proc")

    p = sim.process(racer(), name="proc")
    ring.submit("main-before")  # same timestamp (t=0), main thread
    sim.drain([p])
    ring.submit("main-after")
    det.finalize()
    assert not det.conflicts


def test_resource_ab_ba_deadlock_dump():
    sim, det = _armed_sim()
    a = Resource(sim, 1, "lockA")
    b = Resource(sim, 1, "lockB")

    def grab(first, second):
        yield first.request()
        yield sim.timeout(1.0)
        yield second.request()
        second.release()
        first.release()

    procs = [sim.process(grab(a, b), name="p1"),
             sim.process(grab(b, a), name="p2")]
    with pytest.raises(SimulationError) as exc:
        sim.drain(procs)
    msg = str(exc.value)
    assert "wait-for cycle" in msg
    assert "p1" in msg and "p2" in msg
    assert "lockA" in msg and "lockB" in msg
    assert det.deadlocks_reported


def test_store_mutual_wait_deadlock_dump():
    sim, det = _armed_sim()
    q1 = Store(sim, name="q1")
    q2 = Store(sim, name="q2")

    def relay(src, dst):
        item = yield src.get()
        yield dst.put(item)

    procs = [sim.process(relay(q1, q2), name="r1"),
             sim.process(relay(q2, q1), name="r2")]
    with pytest.raises(SimulationError) as exc:
        sim.drain(procs)
    msg = str(exc.value)
    assert "wait-for cycle" in msg
    assert "q1" in msg and "q2" in msg


def test_blocked_then_served_is_not_deadlock():
    sim, det = _armed_sim()
    q = Store(sim, name="q")

    def consumer():
        item = yield q.get()
        assert item == 42

    def producer():
        yield sim.timeout(1.0)
        yield q.put(42)

    procs = [sim.process(consumer(), name="c"),
             sim.process(producer(), name="p")]
    sim.drain(procs)
    det.finalize()
    assert not det.wait_cycles()
    assert not det.deadlocks_reported


def test_report_dict_shape():
    sim, det = _armed_sim()
    ring = AsyncRing()
    det.watch(ring)

    def racer(tag):
        yield sim.timeout(1.0)
        ring.submit(tag)

    procs = [sim.process(racer(t), name=f"racer-{t}") for t in "ab"]
    sim.drain(procs)
    det.finalize()
    report = det.report_dict()
    assert report["conflicts"] == 1
    assert report["unwaived"] == 1
    assert report["accesses_recorded"] >= 2
    assert report["deadlock_groups"] == []


@pytest.mark.races
def test_machine_run_digest_invariant_under_detector():
    """The detector observes; it must never perturb the schedule."""
    from repro.bench.runner import get_dataset, run_system
    from repro.machine import MachineSpec

    dataset = get_dataset("tiny")
    digests = {}
    for races in (False, True):
        spec = MachineSpec.paper_scaled(sanitize=True, sanitize_trace=True,
                                        sanitize_races=races)
        res = run_system("gnndrive-gpu", dataset, epochs=1, warmup_epochs=0,
                         machine_spec=spec, keep_machine=True)
        assert res.ok, res.error
        digests[races] = res.machine.sanitizer.trace_digest()
    assert digests[False] == digests[True]


@pytest.mark.races
def test_machine_run_is_race_clean():
    from repro.bench.runner import get_dataset, run_system
    from repro.machine import MachineSpec

    dataset = get_dataset("tiny")
    spec = MachineSpec.paper_scaled(sanitize=True, sanitize_races=True)
    res = run_system("gnndrive-gpu", dataset, epochs=1, warmup_epochs=0,
                     machine_spec=spec, keep_machine=True)
    assert res.ok, res.error
    det = res.machine.sanitizer.races
    det.finalize()
    assert not det.unwaived, "\n".join(c.render() for c in det.unwaived)
    assert not det.wait_cycles()


def test_sanitize_races_requires_sanitize():
    from repro.errors import ConfigError
    from repro.machine import MachineSpec

    with pytest.raises(ConfigError):
        MachineSpec.paper_scaled(sanitize_races=True)


def test_detector_exported_from_package():
    assert RaceDetector is not None
