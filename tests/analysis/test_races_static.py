"""Fixture tests for the static cohort-race analysis (RACE2xx).

Each rule gets a minimal process-pair snippet that triggers it, a
closely related snippet that must NOT trigger it, and annotation
coverage for the ``sim-race: ordered`` directive.
"""

import textwrap

from repro.analysis import analyze_modules
from repro.analysis.races import analyze_source


def codes(source: str, **kw):
    return [f.code for f in analyze_source(textwrap.dedent(source), **kw)]


#: A known-racy pair: two sibling processes write the same machine-level
#: page cache in the same cohort with no distinguishing priority.  Used
#: here and (run live) by the dynamic-detector tests — the seeded
#: fixture must be caught by both prongs.
RACY_PAIR = """
    def writer_a_proc(sim, machine):
        while True:
            machine.page_cache.warm(pages)
            yield sim.timeout(1.0)

    def writer_b_proc(sim, machine):
        while True:
            machine.page_cache.invalidate_file(handle)
            yield sim.timeout(1.0)
"""


# ----------------------------------------------------------------------
# RACE201 — write-write
# ----------------------------------------------------------------------
def test_race201_seeded_racy_pair():
    found = codes(RACY_PAIR)
    assert "RACE201" in found


def test_race201_single_writer_is_fine():
    assert codes("""
        def writer_a_proc(sim, machine):
            while True:
                machine.page_cache.warm(pages)
                yield sim.timeout(1.0)

        def reader_metrics(machine):
            return machine.spec
    """) == []


def test_race201_private_objects_are_fine():
    # Each process builds its own ring: no sharing, no finding.
    assert codes("""
        def worker_a_proc(sim):
            ring = AsyncRing(sim)
            while True:
                ring.submit(reqs)
                yield sim.timeout(1.0)

        def worker_b_proc(sim):
            ring = AsyncRing(sim)
            while True:
                ring.submit(reqs)
                yield sim.timeout(1.0)
    """) == []


# ----------------------------------------------------------------------
# RACE202 — read-write
# ----------------------------------------------------------------------
def test_race202_reader_vs_writer():
    found = codes("""
        def writer_proc(sim, machine):
            while True:
                machine.page_cache.warm(pages)
                yield sim.timeout(1.0)

        def reader_proc(sim, machine):
            while True:
                n = machine.page_cache.hits_for(handle)
                yield sim.timeout(1.0)
    """)
    assert "RACE202" in found
    assert "RACE201" not in found


def test_race202_store_handoff_is_fine():
    # Store get/put are sanctioned sync endpoints, never race findings.
    assert codes("""
        def producer_proc(sim, work_q):
            while True:
                yield work_q.put(item)

        def consumer_proc(sim, work_q):
            while True:
                item = yield work_q.get()
    """) == []


# ----------------------------------------------------------------------
# RACE203 — pooled writers
# ----------------------------------------------------------------------
def test_race203_pooled_spawn_loop():
    found = codes("""
        def extract_proc(sim, machine):
            while True:
                machine.page_cache.access_range(handle, 0, 10)
                yield sim.timeout(1.0)

        def start(sim, machine):
            for i in range(4):
                sim.process(extract_proc(sim, machine))
    """)
    assert "RACE203" in found


def test_race203_single_spawn_is_fine():
    assert "RACE203" not in codes("""
        def extract_proc(sim, machine):
            while True:
                machine.page_cache.access_range(handle, 0, 10)
                yield sim.timeout(1.0)

        def start(sim, machine):
            sim.process(extract_proc(sim, machine))
    """)


# ----------------------------------------------------------------------
# RACE205 — stale check-then-act
# ----------------------------------------------------------------------
def test_race205_guard_read_yield_write():
    found = codes("""
        def evict_proc(sim, machine):
            while True:
                if machine.page_cache.contains(page):
                    yield sim.timeout(0.1)
                    machine.page_cache.invalidate_file(page)
                yield sim.timeout(1.0)

        def warm_proc(sim, machine):
            while True:
                machine.page_cache.warm(pages)
                yield sim.timeout(1.0)
    """)
    assert "RACE205" in found


def test_race205_no_yield_between_is_fine():
    assert "RACE205" not in codes("""
        def evict_proc(sim, machine):
            while True:
                if machine.page_cache.contains(page):
                    machine.page_cache.invalidate_file(page)
                yield sim.timeout(1.0)
    """)


# ----------------------------------------------------------------------
# RACE206 — lock-order inversion
# ----------------------------------------------------------------------
def test_race206_ab_ba_acquisition():
    found = codes("""
        def worker_a_proc(sim, cpu, gpu_slots):
            while True:
                yield cpu.request()
                yield gpu_slots.request()
                yield sim.timeout(1.0)
                gpu_slots.release()
                cpu.release()

        def worker_b_proc(sim, cpu, gpu_slots):
            while True:
                yield gpu_slots.request()
                yield cpu.request()
                yield sim.timeout(1.0)
                cpu.release()
                gpu_slots.release()
    """)
    assert "RACE206" in found


def test_race206_consistent_order_is_fine():
    assert "RACE206" not in codes("""
        def worker_a_proc(sim, cpu, gpu_slots):
            while True:
                yield cpu.request()
                yield gpu_slots.request()
                yield sim.timeout(1.0)
                gpu_slots.release()
                cpu.release()

        def worker_b_proc(sim, cpu, gpu_slots):
            while True:
                yield cpu.request()
                yield gpu_slots.request()
                yield sim.timeout(1.0)
                gpu_slots.release()
                cpu.release()
    """)


# ----------------------------------------------------------------------
# ordered-pair annotations
# ----------------------------------------------------------------------
def test_ordered_annotation_suppresses():
    src = RACY_PAIR.replace(
        "machine.page_cache.warm(pages)",
        "machine.page_cache.warm(pages)"
        "  # sim-race: ordered -- test pin")
    assert codes(src) == []


def test_ordered_annotation_requires_justification():
    src = RACY_PAIR.replace(
        "machine.page_cache.warm(pages)",
        "machine.page_cache.warm(pages)  # sim-race" ": ordered")
    assert "RACE201" in codes(src)


def test_ordered_comment_block_covers_next_statement():
    found = codes("""
        def writer_a_proc(sim, machine):
            while True:
                # The extract queue pins this ordering; see the driver
                # slot protocol.
                # sim-race: ordered -- test pin spanning a block
                machine.page_cache.warm(pages)
                yield sim.timeout(1.0)

        def writer_b_proc(sim, machine):
            while True:
                machine.page_cache.invalidate_file(handle)
                yield sim.timeout(1.0)
    """)
    assert found == []


def test_keep_suppressed_reports_annotated_findings():
    src = textwrap.dedent(RACY_PAIR.replace(
        "machine.page_cache.warm(pages)",
        "machine.page_cache.warm(pages)"
        "  # sim-race: ordered -- test pin"))
    findings = analyze_source(src, keep_suppressed=True)
    assert findings and all(f.suppressed for f in findings)


# ----------------------------------------------------------------------
# Cross-module co-run scoping
# ----------------------------------------------------------------------
def test_processes_in_different_modules_do_not_co_run():
    a = textwrap.dedent("""
        def writer_a_proc(sim, machine):
            while True:
                machine.page_cache.warm(pages)
                yield sim.timeout(1.0)
    """)
    b = textwrap.dedent("""
        def writer_b_proc(sim, machine):
            while True:
                machine.page_cache.invalidate_file(handle)
                yield sim.timeout(1.0)
    """)
    findings = analyze_modules([("pkg/mod_a.py", a), ("pkg/mod_b.py", b)])
    assert [f.code for f in findings] == []
