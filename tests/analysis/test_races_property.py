"""Property tests: permutation-invariance for race-clean programs.

A program whose processes never touch shared state in the same cohort
must produce the same per-process observations no matter how the
cohort's intra-timestamp sequence numbers fall — i.e. no matter in
which order the processes were created.  A seeded racy pair, by
contrast, must be flagged by the runtime detector under *every*
creation order.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.analysis import SimSanitizer
from repro.simcore.engine import Simulator


class AsyncRing:
    """Fixture shared object (kind-matched, no default waiver)."""

    def __init__(self):
        self.name = "fixture-ring"
        self.submitted = []

    def submit(self, item):
        self.submitted.append(item)


def _armed_sim():
    sim = Simulator()
    san = SimSanitizer(strict=False)
    san.sim = sim
    sim.sanitizer = san
    det = san.enable_races(sim=sim)
    return sim, det


#: Per-process step plans: each entry is one process's list of timeout
#: durations, drawn from a small float grid so cohorts genuinely
#: collide across processes.
PLANS = st.lists(
    st.lists(st.sampled_from([0.25, 0.5, 1.0, 1.5]), min_size=1,
             max_size=4),
    min_size=2, max_size=5)


def _run_clean(plans, order):
    """Race-clean program: each process logs only to its own list."""
    sim, det = _armed_sim()
    logs = {i: [] for i in range(len(plans))}
    rings = {}
    for i in range(len(plans)):
        ring = AsyncRing()
        det.watch(ring)
        rings[i] = ring

    def worker(i):
        for d in plans[i]:
            yield sim.timeout(d)
            rings[i].submit(i)
            logs[i].append((sim.now, len(rings[i].submitted)))

    procs = [sim.process(worker(i), name=f"w{i}") for i in order]
    sim.drain(procs)
    det.finalize()
    return logs, det


@settings(max_examples=40, deadline=None)
@given(plans=PLANS, data=st.data())
def test_race_clean_program_is_permutation_invariant(plans, data):
    n = len(plans)
    order = data.draw(st.permutations(range(n)))
    base_logs, base_det = _run_clean(plans, list(range(n)))
    perm_logs, perm_det = _run_clean(plans, order)
    # Identical per-process observations regardless of seq allocation.
    assert base_logs == perm_logs
    # And the detector agrees the program is race-free either way.
    assert not base_det.conflicts and not perm_det.conflicts


@settings(max_examples=25, deadline=None)
@given(order=st.permutations(range(4)),
       delay=st.sampled_from([0.5, 1.0, 2.0]))
def test_seeded_racy_pair_flagged_under_every_order(order, delay):
    sim, det = _armed_sim()
    shared = AsyncRing()
    det.watch(shared)

    def racer(tag):
        yield sim.timeout(delay)
        shared.submit(tag)

    def bystander(tag):
        ring = AsyncRing()
        det.watch(ring)
        yield sim.timeout(delay)
        ring.submit(tag)

    makers = [lambda i=i: sim.process(racer(i), name=f"racer-{i}")
              if i < 2 else
              sim.process(bystander(i), name=f"bystander-{i}")
              for i in range(4)]
    procs = [makers[i]() for i in order]
    sim.drain(procs)
    det.finalize()
    unwaived = det.unwaived
    assert len(unwaived) == 1
    assert {unwaived[0].proc_a, unwaived[0].proc_b} == \
        {"racer-0", "racer-1"}


@pytest.mark.races
@settings(max_examples=10, deadline=None)
@given(order=st.permutations(range(3)))
def test_wait_for_graph_quiet_for_pipelines(order):
    """FIFO pipeline handoffs never look like deadlock, in any order."""
    from repro.simcore.resources import Store

    sim, det = _armed_sim()
    q1, q2 = Store(sim, name="q1"), Store(sim, name="q2")

    def source():
        for i in range(3):
            yield sim.timeout(1.0)
            yield q1.put(i)

    def relay():
        for _ in range(3):
            item = yield q1.get()
            yield q2.put(item)

    def sink():
        for _ in range(3):
            yield q2.get()

    makers = {0: (source, "source"), 1: (relay, "relay"),
              2: (sink, "sink")}
    procs = [sim.process(makers[i][0](), name=makers[i][1])
             for i in order]
    sim.drain(procs)
    det.finalize()
    assert not det.wait_cycles(drained=True)
    assert not det.conflicts
