"""Strict-typing gate for the deterministic core.

CI installs mypy and runs ``mypy --strict -p repro.simcore -p
repro.analysis`` in the lint job; this test mirrors that gate locally
when mypy happens to be installed, and otherwise checks the cheap
structural half of the policy that needs no third-party tooling:

* every function/method in both packages carries a return annotation
  and annotates all of its parameters;
* every ``type: ignore`` names an error code and carries a trailing
  ``--``-free reason comment on the same line.
"""

from __future__ import annotations

import ast
import pathlib
import re
import shutil
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO / "src"
PACKAGES = ("repro.simcore", "repro.analysis")


def _package_files() -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for pkg in PACKAGES:
        root = SRC / pathlib.Path(*pkg.split("."))
        files.extend(sorted(root.rglob("*.py")))
    assert files, "package sources not found — did the layout move?"
    return files


def test_mypy_strict_when_available() -> None:
    """Run the exact CI command if mypy is importable; skip otherwise."""
    if shutil.which("mypy") is None:
        pytest.skip("mypy not installed locally; the CI lint job runs it")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict",
         "-p", PACKAGES[0], "-p", PACKAGES[1]],
        cwd=REPO, capture_output=True, text=True,
        env={"PATH": "/usr/bin:/bin", "MYPYPATH": str(SRC)},
    )
    assert proc.returncode == 0, (
        f"mypy --strict failed:\n{proc.stdout}\n{proc.stderr}")


def test_all_defs_are_annotated() -> None:
    """No un-annotated signatures in repro.simcore / repro.analysis."""
    missing: list[str] = []
    for path in _package_files():
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            where = f"{path.relative_to(REPO)}:{node.lineno} {node.name}"
            if node.returns is None:
                missing.append(f"{where} (return)")
            args = node.args
            params = (args.posonlyargs + args.args + args.kwonlyargs)
            for arg in params:
                if arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    missing.append(f"{where} (param {arg.arg})")
            for star in (args.vararg, args.kwarg):
                if star is not None and star.annotation is None:
                    missing.append(f"{where} (param *{star.arg})")
    assert not missing, "un-annotated defs:\n" + "\n".join(missing)


def test_type_ignores_carry_code_and_reason() -> None:
    """``type: ignore`` must name an error code and justify itself."""
    pattern = re.compile(r"#\s*type:\s*ignore(\[[\w,\-]+\])?")
    bad: list[str] = []
    for path in _package_files():
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            m = pattern.search(line)
            if m is None:
                continue
            where = f"{path.relative_to(REPO)}:{lineno}"
            if m.group(1) is None:
                bad.append(f"{where}: bare type: ignore (no error code)")
            # The justification rides the same line or the line above;
            # same-line is the house style.
            tail = line[m.end():].strip()
            if not tail.lstrip("#").strip():
                bad.append(f"{where}: no reason comment after the ignore")
    assert not bad, "\n".join(bad)
