"""End-to-end sanitizer runs over the example systems.

Marked ``sanitize``: each test trains a real system on the small
synthetic graph with the strict sanitizer attached, asserting zero
leaks and clean tie audits — and that turning the sanitizer on does not
change the simulation (identical epoch stats off vs. on).
"""

from dataclasses import asdict

import pytest

from repro.bench.determinism import check_system, stats_fingerprint
from repro.bench.runner import get_dataset, run_system
from repro.core.base import TrainConfig

SYSTEMS = ("gnndrive-gpu", "pyg+", "ginex")

pytestmark = pytest.mark.sanitize


@pytest.fixture(scope="module")
def dataset():
    return get_dataset("tiny")


@pytest.mark.parametrize("system", SYSTEMS)
def test_sanitized_run_is_clean(system, dataset):
    res = run_system(system, dataset, epochs=2, warmup_epochs=0,
                     sanitize=True, keep_machine=True)
    assert res.ok, res.error
    san = res.machine.sanitizer
    assert san is not None
    assert san.clean, san.report()
    assert san.epochs_checked == 2
    # The tie audit saw real activity and every tie was digested.
    rep = san.tie_report()
    assert rep["steps"] > 0
    assert rep["tie_pops"] <= rep["steps"]
    # No pinned bytes besides the baseline leak out of run_epochs:
    # tags present at the end existed before epoch 0 too.
    assert san.findings == []


@pytest.mark.parametrize("system", SYSTEMS)
def test_sanitizer_does_not_change_epoch_stats(system, dataset):
    """Property: the sanitizer observes; off/on traces are identical."""
    results = [
        run_system(system, dataset, epochs=2, warmup_epochs=0,
                   sanitize=sanitize)
        for sanitize in (False, True)
    ]
    assert all(r.ok for r in results), [r.error for r in results]
    off, on = (stats_fingerprint(r.stats) for r in results)
    assert off == on


def test_determinism_check_system_report(dataset):
    report = check_system("gnndrive-gpu", dataset, epochs=1)
    assert report["deterministic"], report
    assert report["clean"]
    assert report["trace_digests"][0] == report["trace_digests"][1]
    assert "first_divergence" not in report


def test_stats_fingerprint_is_nan_safe():
    from repro.core.stats import EpochStats, StageBreakdown

    a = EpochStats(epoch=0, epoch_time=1.0, stages=StageBreakdown())
    b = EpochStats(epoch=0, epoch_time=1.0, stages=StageBreakdown())
    assert float("nan") != float("nan")  # why == would be wrong
    assert asdict(a) != asdict(b) or True  # dict == is NaN-poisoned
    assert stats_fingerprint([a]) == stats_fingerprint([b])
