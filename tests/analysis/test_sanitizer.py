"""Unit tests for the runtime sanitizer (engine hooks, audits, leaks)."""

import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis import SimSanitizer
from repro.errors import SanitizerError, SimulationError
from repro.machine import Machine, MachineSpec
from repro.simcore.engine import Simulator

GB = 1024 ** 3


def make_sim(san=None):
    sim = Simulator()
    sim.sanitizer = san
    return sim


def drive(sim, delays):
    for d in delays:
        sim.timeout(d)
    sim.run()


# ----------------------------------------------------------------------
# Scheduling audit
# ----------------------------------------------------------------------
def test_schedule_audit_rejects_nan_time():
    sim = make_sim(SimSanitizer(strict=True))
    with pytest.raises(SanitizerError, match="non-finite"):
        sim.timeout(math.nan)


def test_schedule_audit_rejects_inf_time():
    sim = make_sim(SimSanitizer(strict=True))
    with pytest.raises(SanitizerError, match="non-finite"):
        sim.timeout(math.inf)


def test_schedule_audit_rejects_unknown_priority():
    sim = make_sim(SimSanitizer(strict=True))
    ev = sim.event()
    with pytest.raises(SanitizerError, match="unknown priority"):
        ev.succeed(None, priority=7)


def test_schedule_audit_rejects_past_time():
    san = SimSanitizer(strict=True)
    sim = make_sim(san)
    with pytest.raises(SanitizerError, match="in the past"):
        san.on_schedule(now=5.0, when=4.0, priority=1, seq=1, event=object())


def test_non_strict_collects_instead_of_raising():
    san = SimSanitizer(strict=False)
    sim = make_sim(san)
    sim.timeout(math.nan)
    assert not san.clean
    assert san.findings[0].kind == "schedule"
    assert "non-finite" in san.report()


def test_clean_run_has_no_findings():
    san = SimSanitizer(strict=True)
    sim = make_sim(san)
    drive(sim, [0.1, 0.2, 0.3])
    assert san.clean
    assert san.steps == 3


# ----------------------------------------------------------------------
# Trace digest and tie audit
# ----------------------------------------------------------------------
def test_identical_runs_share_a_digest():
    digests = []
    for _ in range(2):
        san = SimSanitizer(strict=True, trace=True)
        sim = make_sim(san)
        drive(sim, [0.1, 0.1, 0.2])
        digests.append(san.trace_digest())
    assert digests[0] == digests[1]


def test_different_runs_differ_and_diff_to_first_step():
    sans = []
    for delays in ([0.1, 0.2], [0.1, 0.3]):
        san = SimSanitizer(strict=True, trace=True)
        sim = make_sim(san)
        drive(sim, delays)
        sans.append(san)
    assert sans[0].trace_digest() != sans[1].trace_digest()
    div = SimSanitizer.first_divergence(sans[0], sans[1])
    assert div["step"] == 1
    assert div["run_a"][0] == 0.2 and div["run_b"][0] == 0.3


def test_first_divergence_length_mismatch():
    sans = []
    for delays in ([0.1], [0.1, 0.2]):
        san = SimSanitizer(strict=True, trace=True)
        sim = make_sim(san)
        drive(sim, delays)
        sans.append(san)
    div = SimSanitizer.first_divergence(sans[0], sans[1])
    assert div["step"] == 1
    assert div["run_a"] is None and div["run_b"] is not None


def test_first_divergence_requires_tracing():
    with pytest.raises(ValueError):
        SimSanitizer.first_divergence(SimSanitizer(), SimSanitizer())


def test_tie_audit_counts_runs():
    san = SimSanitizer(strict=True)
    sim = make_sim(san)
    # Three events at t=1 (one tie run of 3) and one lone event at t=2.
    drive(sim, [1.0, 1.0, 1.0, 2.0])
    rep = san.tie_report()
    assert rep["steps"] == 4
    assert rep["tie_pops"] == 2      # pops 2 and 3 tied with a predecessor
    assert rep["tie_runs"] == 1
    assert rep["max_tie_run"] == 3


# ----------------------------------------------------------------------
# Ring audit
# ----------------------------------------------------------------------
def _ring(depth, now=0.0):
    return SimpleNamespace(depth=depth, sim=SimpleNamespace(now=now))


def test_ring_audit_accepts_bounded_fifo():
    san = SimSanitizer(strict=True)
    # depth 2: completions two apart are monotone.
    san.check_ring(_ring(2), np.array([1.0, 1.5, 2.0, 2.5]))
    assert san.clean


def test_ring_audit_rejects_completion_before_submission():
    san = SimSanitizer(strict=True)
    with pytest.raises(SanitizerError, match="before"):
        san.check_ring(_ring(2, now=5.0), np.array([4.0, 6.0]))


def test_ring_audit_rejects_overdeep_window():
    san = SimSanitizer(strict=True)
    # done[2] < done[0] with depth 2 implies 3 requests in flight.
    with pytest.raises(SanitizerError, match="in flight"):
        san.check_ring(_ring(2), np.array([3.0, 3.5, 2.0, 4.0]))


# ----------------------------------------------------------------------
# Leak detector and invariant registry (on a real machine)
# ----------------------------------------------------------------------
def sanitizing_machine():
    return Machine(MachineSpec(host_capacity=GB, sanitize=True))


def test_epoch_leak_is_reported_by_tag():
    m = sanitizing_machine()
    san = m.sanitizer
    san.epoch_begin()
    m.host.allocate(4096, tag="staging")
    with pytest.raises(SanitizerError, match=r"host:staging.*leaked 4096"):
        san.epoch_end()


def test_epoch_device_leak_is_reported():
    m = sanitizing_machine()
    m.sanitizer.epoch_begin()
    m.gpus[0].allocate(512, tag="activations")
    with pytest.raises(SanitizerError, match="gpu0:activations"):
        m.sanitizer.epoch_end()


def test_balanced_epoch_is_clean():
    m = sanitizing_machine()
    m.sanitize_epoch_begin()
    a = m.host.allocate(4096, tag="staging")
    m.gpus[0].allocate(512, tag="activations")
    m.gpus[0].free(512, tag="activations")
    m.host.free(a)
    m.sanitize_epoch_end()
    assert m.sanitizer.clean
    assert m.sanitizer.epochs_checked == 1


def test_baseline_allocations_do_not_count_as_leaks():
    m = sanitizing_machine()
    m.host.allocate(8192, tag="indptr")  # pinned before the epoch
    m.sanitize_epoch_begin()
    m.sanitize_epoch_end()
    assert m.sanitizer.clean


def test_register_requires_check_invariants():
    with pytest.raises(TypeError):
        SimSanitizer().register(object())


def test_registered_invariants_run_at_epoch_end():
    class Corrupt:
        def check_invariants(self):
            raise SimulationError("boom")

    m = sanitizing_machine()
    m.sanitizer.register(Corrupt())
    m.sanitize_epoch_begin()
    with pytest.raises(SimulationError, match="boom"):
        m.sanitize_epoch_end()


def test_memory_invariant_checkers_pass_on_live_machine():
    m = sanitizing_machine()
    m.host.allocate(4096, tag="x")
    m.gpus[0].allocate(64, tag="y")
    m.sanitizer.check_registered()


def test_machine_without_sanitize_has_noop_hooks():
    m = Machine(MachineSpec(host_capacity=GB))
    assert m.sanitizer is None
    assert m.sim.sanitizer is None
    m.sanitize_epoch_begin()
    m.sanitize_epoch_end()
