"""Admission queue and micro-batcher unit behaviour."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.serve import AdmissionQueue, MicroBatcher
from repro.serve.workload import Request
from repro.simcore import Simulator

pytestmark = pytest.mark.serve


def _req(rid: int, arrival: float = 0.0, slo: float = 1.0) -> Request:
    return Request(rid=rid, arrival=arrival,
                   seeds=np.array([rid], dtype=np.int64),
                   deadline=arrival + slo)


def _collector(jobs):
    def dispatch(job):
        jobs.append(job)
        return
        yield  # pragma: no cover - makes dispatch a generator
    return dispatch


def test_queue_sheds_when_full():
    sim = Simulator()
    q = AdmissionQueue(sim, capacity=2)
    assert q.offer(_req(0)) and q.offer(_req(1))
    assert not q.offer(_req(2))
    assert (q.offered, q.shed, len(q), q.peak_depth) == (3, 1, 2, 2)
    q.check_invariants()


def test_queue_offer_after_close_raises():
    sim = Simulator()
    q = AdmissionQueue(sim, capacity=2)
    q.close()
    with pytest.raises(SimulationError, match="closed"):
        q.offer(_req(0))


def test_queue_arrival_event_fires_on_offer():
    sim = Simulator()
    q = AdmissionQueue(sim, capacity=4)
    ev = q.arrival_event()
    assert not ev.triggered
    q.offer(_req(0))
    assert ev.triggered
    # With items queued the event fires immediately.
    assert q.arrival_event().triggered


def test_abandoned_waiter_loses_nothing():
    """The Store hazard this queue exists to avoid: an abandoned

    arrival_event must not swallow an item."""
    sim = Simulator()
    q = AdmissionQueue(sim, capacity=4)
    q.arrival_event()            # abandoned immediately
    q.offer(_req(0))
    assert q.try_pop().rid == 0  # the item is still claimable


def test_batcher_seals_at_max_batch_size():
    sim = Simulator()
    q = AdmissionQueue(sim, capacity=16)
    jobs = []
    b = MicroBatcher(sim, q, max_batch_size=3, max_wait=1.0,
                     dispatch=_collector(jobs))
    for i in range(7):
        q.offer(_req(i))
    q.close()
    sim.process(b.run(), name="batcher")
    sim.run()
    assert [len(j) for j in jobs] == [3, 3, 1]
    assert [r.rid for j in jobs for r in j.requests] == list(range(7))
    assert all(r.batch_id == j.batch_id for j in jobs for r in j.requests)


def test_batcher_seals_after_max_wait():
    sim = Simulator()
    q = AdmissionQueue(sim, capacity=16)
    jobs = []
    b = MicroBatcher(sim, q, max_batch_size=8, max_wait=0.25,
                     dispatch=_collector(jobs))

    def producer(sim, q):
        q.offer(_req(0))
        yield sim.timeout(1.0)   # far beyond max_wait
        q.offer(_req(1))
        q.close()

    sim.process(producer(sim, q), name="producer")
    sim.process(b.run(), name="batcher")
    sim.run()
    assert [len(j) for j in jobs] == [1, 1]
    assert jobs[0].sealed_at == pytest.approx(0.25)
    assert jobs[0].wait <= 0.25 + 1e-12


def test_batcher_zero_wait_seals_immediately():
    sim = Simulator()
    q = AdmissionQueue(sim, capacity=16)
    jobs = []
    b = MicroBatcher(sim, q, max_batch_size=8, max_wait=0.0,
                     dispatch=_collector(jobs))
    q.offer(_req(0))
    q.offer(_req(1))
    q.close()
    sim.process(b.run(), name="batcher")
    sim.run()
    assert len(jobs) == 1 and len(jobs[0]) == 2
    assert jobs[0].wait == 0.0


def test_batcher_admit_filter_drops():
    """Rejected requests never enter a job (the deadline drop path)."""
    sim = Simulator()
    q = AdmissionQueue(sim, capacity=16)
    jobs, dropped = [], []

    def admit(req):
        if req.rid % 2:
            dropped.append(req.rid)
            return False
        return True

    b = MicroBatcher(sim, q, max_batch_size=4, max_wait=0.0,
                     dispatch=_collector(jobs), admit=admit)
    for i in range(6):
        q.offer(_req(i))
    q.close()
    sim.process(b.run(), name="batcher")
    sim.run()
    assert [r.rid for j in jobs for r in j.requests] == [0, 2, 4]
    assert dropped == [1, 3, 5]


def test_batcher_returns_when_closed_and_drained():
    sim = Simulator()
    q = AdmissionQueue(sim, capacity=4)
    b = MicroBatcher(sim, q, max_batch_size=2, max_wait=0.1,
                     dispatch=_collector([]))
    p = sim.process(b.run(), name="batcher")
    q.close()
    sim.run()
    assert not p.is_alive


def test_knob_validation():
    sim = Simulator()
    q = AdmissionQueue(sim, capacity=1)
    with pytest.raises(ValueError):
        AdmissionQueue(sim, capacity=0)
    with pytest.raises(ValueError):
        MicroBatcher(sim, q, max_batch_size=0, max_wait=0.1,
                     dispatch=_collector([]))
    with pytest.raises(ValueError):
        MicroBatcher(sim, q, max_batch_size=1, max_wait=-0.1,
                     dispatch=_collector([]))
