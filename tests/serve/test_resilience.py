"""Replica failure domain: chaos runs, failover, hedging, brownout.

End-to-end runs of the serving plane under ``replica_*`` fault plans,
plus the crash-teardown hygiene checks (no pinned staging leaks, a cold
feature buffer, a reset ring after every crash episode).
"""

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec, default_replica_chaos_plan
from repro.serve import ServeScenario, run_serve_scenario
from repro.serve.resilience import JobQueue
from repro.simcore import Simulator

pytestmark = [pytest.mark.serve, pytest.mark.chaos]

CHAOS = ServeScenario(name="t-chaos", dataset="tiny", rate=400.0,
                      num_requests=40, num_replicas=2, slo=0.05,
                      fault_plan="replica-chaos", seed=7)


def _run_ok(scenario):
    run = run_serve_scenario(scenario)
    assert run.ok, run.error
    assert run.clean, run.findings
    run.stats.check_accounting()
    return run


# ----------------------------------------------------------------------
# End-to-end chaos: nothing lost, everything accounted
# ----------------------------------------------------------------------
def test_replica_chaos_lossless_async():
    run = _run_ok(CHAOS)
    s = run.stats
    assert s.completed + s.shed + s.timed_out + s.failed == s.offered
    assert s.faults["injected_crash"] > 0
    assert s.faults["injected_hang"] > 0
    assert s.faults["injected_slow"] > 0
    assert s.faults["replica_restarts"] >= 1
    assert s.faults["replica_down_time"] > 0


def test_replica_chaos_lossless_sync():
    run = _run_ok(CHAOS.with_(backend="sync"))
    s = run.stats
    assert s.completed + s.shed + s.timed_out + s.failed == s.offered
    assert s.faults["injected_replica"] > 0


def test_replica_chaos_deterministic():
    r1 = run_serve_scenario(CHAOS)
    r2 = run_serve_scenario(CHAOS)
    assert r1.ok and r2.ok
    assert r1.digest and r1.digest == r2.digest
    assert r1.stats.faults == r2.stats.faults
    assert r1.stats.latency_p99 == r2.stats.latency_p99


def test_empty_plan_is_digest_identical_to_no_plan():
    base = CHAOS.with_(fault_plan="none")
    plain = _run_ok(base)
    empty = _run_ok(base.with_(fault_plan="empty"))
    assert plain.digest == empty.digest
    # Resilience stays unarmed: no replica machinery in the ledger.
    assert plain.stats.faults == {} and empty.stats.faults == {}


def test_hedging_beats_unhedged_p99():
    hedged = _run_ok(CHAOS)
    unhedged = _run_ok(CHAOS.with_(hedge=False))
    assert hedged.stats.faults["hedges"] > 0
    assert unhedged.stats.faults.get("hedges", 0) == 0
    assert hedged.stats.latency_p99 < unhedged.stats.latency_p99
    wins = hedged.stats.faults.get("hedge_wins", 0)
    discards = hedged.stats.faults.get("hedge_discards", 0)
    assert wins + discards <= hedged.stats.faults["hedges"]


def test_forced_failover_and_brownout():
    """Overlapping crashes orphan in-flight work and trip brownout."""
    plan = FaultPlan((
        FaultSpec("c0", "replica_crash", replica=0, start=0.005,
                  duration=0.02, period=0.05),
        FaultSpec("c1", "replica_crash", replica=1, start=0.012,
                  duration=0.02, period=0.06),
        FaultSpec("h2", "replica_hang", replica=2, start=0.02,
                  duration=0.015, period=0.07),
    ), seed=5)
    sc = CHAOS.with_(fault_plan="none", num_replicas=3, rate=3000.0,
                     num_requests=150, slo=0.08, seed=13)
    run = _run_ok(sc.with_(fault_plan_file=_save(plan)))
    s = run.stats
    assert s.faults["orphaned"] > 0
    assert s.faults["failovers"] > 0
    assert s.faults["brownouts"] >= 1
    assert s.faults["brownout_time"] > 0
    assert s.completed + s.shed + s.timed_out + s.failed == s.offered


def _save(plan):
    import tempfile
    path = tempfile.mktemp(suffix=".json")
    plan.save(path)
    return path


def test_failover_budget_zero_fails_orphans():
    """With no failover budget, crash-orphaned requests end ``failed``."""
    from repro.bench.runner import get_dataset
    from repro.machine import DEFAULT_SCALE, Machine, MachineSpec
    from repro.serve.server import InferenceServer

    plan = FaultPlan((
        FaultSpec("c0", "replica_crash", replica=0, start=0.004,
                  duration=0.03, period=0.04),
        FaultSpec("c1", "replica_crash", replica=1, start=0.01,
                  duration=0.03, period=0.05),
    ), seed=3)
    sc = CHAOS.with_(fault_plan="none", rate=2000.0, num_requests=80,
                     seed=9)
    machine = Machine(MachineSpec.paper_scaled(
        host_gb=sc.host_gb, scale=DEFAULT_SCALE, num_gpus=2,
        sanitize=True, faults=plan))
    server = InferenceServer(
        machine, get_dataset("tiny"),
        config=sc.serve_config().with_(failover_budget=0),
        workload=sc.workload_spec(), train_cfg=sc.train_config())
    try:
        stats = server.run()
    finally:
        server.teardown()
    stats.check_accounting()
    if stats.faults.get("orphaned", 0) > 0:
        # orphan_failed counts attempts (jobs); each failed attempt
        # fails at least one batched request.
        assert stats.faults.get("orphan_failed", 0) > 0
        assert stats.failed >= stats.faults["orphan_failed"]
        assert stats.faults.get("failovers", 0) == 0


# ----------------------------------------------------------------------
# Crash teardown hygiene: pinned staging, ring, feature buffer
# ----------------------------------------------------------------------
def test_crash_teardown_leaves_no_pinned_leak():
    """After crash episodes, staging is empty and buffers are coherent.

    The crash path must return the dead replica's pinned staging
    reservation and leave its feature buffer/ring in a restartable
    state — a leak here compounds per restart until extraction
    deadlocks on staging it can never reclaim.
    """
    from repro.bench.runner import get_dataset
    from repro.machine import DEFAULT_SCALE, Machine, MachineSpec
    from repro.serve.server import InferenceServer

    sc = CHAOS.with_(num_requests=60)
    machine = Machine(MachineSpec.paper_scaled(
        host_gb=sc.host_gb, scale=DEFAULT_SCALE, num_gpus=2,
        sanitize=True, faults=default_replica_chaos_plan()))
    server = InferenceServer(machine, get_dataset("tiny"),
                             config=sc.serve_config(),
                             workload=sc.workload_spec(),
                             train_cfg=sc.train_config())
    try:
        stats = server.run()
        assert stats.faults["injected_crash"] > 0
        if server.staging is not None:
            assert server.staging.in_use == 0
        for backend in server.backends:
            fb = getattr(backend, "feature_buffer", None)
            if fb is not None:
                fb.check_invariants()
            ring = getattr(backend, "ring", None)
            if ring is not None:
                assert len(ring._sq) == 0
    finally:
        server.teardown()


def test_reset_cold_restores_feature_buffer():
    """Unit check for the crash-path cold reset."""
    from repro.bench.runner import get_dataset
    from repro.machine import DEFAULT_SCALE, Machine, MachineSpec
    from repro.serve.server import InferenceServer

    sc = CHAOS.with_(fault_plan="none", num_requests=8)
    machine = Machine(MachineSpec.paper_scaled(
        host_gb=sc.host_gb, scale=DEFAULT_SCALE, num_gpus=2,
        sanitize=True))
    server = InferenceServer(machine, get_dataset("tiny"),
                             config=sc.serve_config(),
                             workload=sc.workload_spec(),
                             train_cfg=sc.train_config())
    try:
        server.run()
        backend = server.backends[0]
        fb = getattr(backend, "feature_buffer", None)
        if fb is not None:
            assert fb.valid.any()        # warm rows from the run
            fb.reset_cold()
            assert not fb.valid.any()
            assert (fb.ref == 0).all()
            fb.check_invariants()
    finally:
        server.teardown()


# ----------------------------------------------------------------------
# JobQueue unit behaviour
# ----------------------------------------------------------------------
def test_job_queue_fifo_and_front_requeue():
    sim = Simulator()
    q = JobQueue(sim)
    q.push("a")
    q.push("b")
    q.push_front("z")
    assert q.try_pop() == "z"
    assert q.try_pop() == "a"
    assert q.try_pop() == "b"
    assert q.try_pop() is None
    q.check_invariants()


def test_job_queue_drain_and_close():
    sim = Simulator()
    q = JobQueue(sim)
    for item in ("a", "b", "c"):
        q.push(item)
    assert q.drain() == ["a", "b", "c"]
    assert len(q) == 0
    q.close()
    assert q.closed
    q.check_invariants()


def test_job_queue_wakes_waiter():
    sim = Simulator()
    q = JobQueue(sim)
    seen = []

    def consumer(sim):
        while True:
            item = q.try_pop()
            if item is not None:
                seen.append(item)
                if item == "stop":
                    return
                continue
            yield q.arrival_event()

    def producer(sim):
        yield sim.timeout(0.1)
        q.push("x")
        yield sim.timeout(0.1)
        q.push("stop")

    sim.process(consumer(sim), name="consumer")
    sim.process(producer(sim), name="producer")
    sim.run()
    assert seen == ["x", "stop"]
    q.check_invariants()


# ----------------------------------------------------------------------
# Scenario plumbing
# ----------------------------------------------------------------------
def test_fault_plan_file_round_trip(tmp_path):
    path = tmp_path / "plan.json"
    default_replica_chaos_plan().save(str(path))
    via_file = _run_ok(CHAOS.with_(fault_plan="none",
                                   fault_plan_file=str(path)))
    via_preset = _run_ok(CHAOS)
    assert via_file.digest == via_preset.digest


def test_fault_plan_file_excludes_preset():
    with pytest.raises(ValueError):
        CHAOS.with_(fault_plan_file="x.json")


def test_resilience_forced_on_without_faults():
    """``resilience='on'`` arms the plane even with no fault plan."""
    from repro.bench.runner import get_dataset
    from repro.machine import DEFAULT_SCALE, Machine, MachineSpec
    from repro.serve.server import InferenceServer

    sc = CHAOS.with_(fault_plan="none", num_requests=16)
    machine = Machine(MachineSpec.paper_scaled(
        host_gb=sc.host_gb, scale=DEFAULT_SCALE, num_gpus=2,
        sanitize=True))
    server = InferenceServer(machine, get_dataset("tiny"),
                             config=sc.serve_config().with_(
                                 resilience="on"),
                             workload=sc.workload_spec(),
                             train_cfg=sc.train_config())
    try:
        assert server.resilience is not None
        stats = server.run()
    finally:
        server.teardown()
    stats.check_accounting()
    assert stats.completed == 16
