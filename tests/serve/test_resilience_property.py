"""Property tests for the replica failure domain.

1. **Hedge first-completion-wins is deterministic and conservative.**
   For any permutation of the fault-plan spec order — which permutes
   the creation order of the driver processes and therefore the
   same-timestamp event cohorts — every request still reaches exactly
   one terminal state, the hedge ledger balances
   (``wins + discards <= hedges``), and re-running the same permutation
   reproduces the same trace digest bit-for-bit (the winner of a
   primary/hedge race is decided by deterministic cohort order, never
   wall-clock).

2. **Failover never double-completes or double-sheds.**  For arbitrary
   crash schedules and failover budgets, the accounting identity
   ``offered == completed + shed + timed_out + failed`` holds — a
   double-completion or double-shed would break it — and the fault
   ledger balance rules pass (checked inside ``run_serve_scenario``;
   a violation surfaces as a finding).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import FaultPlan, FaultSpec, default_replica_chaos_plan
from repro.serve import ServeScenario, run_serve_scenario

pytestmark = [pytest.mark.serve, pytest.mark.chaos]

BASE = ServeScenario(name="p-chaos", dataset="tiny", rate=500.0,
                     num_requests=24, num_replicas=2, slo=0.05,
                     fault_plan="none", seed=3)


def _run_with_plan(plan, **kw):
    import tempfile
    path = tempfile.mktemp(suffix=".json")
    plan.save(path)
    return run_serve_scenario(BASE.with_(fault_plan_file=path, **kw))


@settings(max_examples=10, deadline=None)
@given(order=st.permutations(range(3)),
       seed=st.integers(min_value=0, max_value=2**16))
def test_hedge_first_completion_wins_deterministic(order, seed):
    specs = default_replica_chaos_plan().specs
    plan = FaultPlan(tuple(specs[i] for i in order), seed=11)
    first = _run_with_plan(plan, seed=seed)
    again = _run_with_plan(plan, seed=seed)
    assert first.ok and again.ok, (first.error, again.error)
    assert first.clean, first.findings
    # Same permutation, same seed -> bit-identical winner selection.
    assert first.digest and first.digest == again.digest
    assert first.stats.faults == again.stats.faults
    s = first.stats
    # Conservation: exactly one terminal state per request.
    s.check_accounting()
    assert s.completed + s.shed + s.timed_out + s.failed == s.offered
    wins = s.faults.get("hedge_wins", 0)
    discards = s.faults.get("hedge_discards", 0)
    assert wins + discards <= s.faults.get("hedges", 0)


crash_specs = st.lists(
    st.tuples(
        st.integers(min_value=-1, max_value=2),          # replica target
        st.floats(min_value=0.002, max_value=0.04,       # start
                  allow_nan=False),
        st.floats(min_value=0.005, max_value=0.03,       # duration
                  allow_nan=False),
    ),
    min_size=1, max_size=3)


@settings(max_examples=10, deadline=None)
@given(raw=crash_specs,
       budget=st.integers(min_value=0, max_value=3),
       seed=st.integers(min_value=0, max_value=2**16))
def test_failover_never_double_completes(raw, budget, seed):
    from repro.bench.runner import get_dataset
    from repro.machine import DEFAULT_SCALE, Machine, MachineSpec
    from repro.serve.server import InferenceServer

    specs = tuple(
        FaultSpec(f"crash{i}", "replica_crash", replica=rep,
                  start=start, duration=dur,
                  period=dur + 0.02)
        for i, (rep, start, dur) in enumerate(raw))
    sc = BASE.with_(rate=1500.0, seed=seed)
    machine = Machine(MachineSpec.paper_scaled(
        host_gb=sc.host_gb, scale=DEFAULT_SCALE,
        num_gpus=sc.num_replicas, sanitize=True,
        faults=FaultPlan(specs, seed=5)))
    server = InferenceServer(
        machine, get_dataset("tiny"),
        config=sc.serve_config().with_(failover_budget=budget),
        workload=sc.workload_spec(), train_cfg=sc.train_config())
    try:
        stats = server.run()
    finally:
        server.teardown()
    # Double-completion/shed would break the terminal-state identity.
    stats.check_accounting()
    s = stats
    assert s.completed + s.shed + s.timed_out + s.failed == s.offered
    machine.faults.ledger.check_invariants()
    assert s.faults.get("failovers", 0) + s.faults.get(
        "orphan_failed", 0) <= s.faults.get("orphaned", 0)
