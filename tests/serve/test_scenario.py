"""ServeScenario round-trips and validation."""

import json

import pytest

from repro.serve import ServeScenario

pytestmark = pytest.mark.serve


def test_dict_round_trip():
    s = ServeScenario(name="rt", dataset="tiny", backend="sync",
                      kind="closed", rate=42.0, num_requests=7,
                      num_replicas=2, fault_plan="chaos", seed=3)
    assert ServeScenario.from_dict(s.to_dict()) == s


def test_json_round_trip():
    s = ServeScenario(name="rt-json", max_wait=0.0, slo=0.01)
    blob = json.dumps(s.to_dict())
    assert ServeScenario.from_dict(json.loads(blob)) == s


def test_with_override():
    s = ServeScenario(name="base")
    assert s.with_(rate=999.0).rate == 999.0
    assert s.rate != 999.0


def test_validation_delegates():
    with pytest.raises(ValueError):
        ServeScenario(name="bad", fault_plan="mystery")
    with pytest.raises(ValueError):
        ServeScenario(name="bad", dataset_scale=0.0)
    with pytest.raises(Exception):
        ServeScenario(name="bad", backend="turbo")
    with pytest.raises(Exception):
        ServeScenario(name="bad", kind="bursty")


def test_builders_reflect_fields():
    s = ServeScenario(name="b", backend="sync", kind="poisson",
                      rate=10.0, num_requests=5, slo=0.2,
                      max_batch_size=3, max_wait=0.0, num_replicas=2,
                      queue_capacity=9, model_kind="gcn", seed=5)
    w = s.workload_spec()
    assert (w.kind, w.rate, w.num_requests, w.seed) == \
        ("poisson", 10.0, 5, 5)
    c = s.serve_config()
    assert (c.backend, c.slo, c.max_batch_size, c.max_wait,
            c.num_replicas, c.queue_capacity) == \
        ("sync", 0.2, 3, 0.0, 2, 9)
    assert s.train_config().model_kind == "gcn"
    assert s.machine_spec().num_gpus == 2
    assert s.resolve_fault_plan() is None
