"""Property tests pinning the serving-plane invariants.

1. The micro-batcher never violates ``max_batch_size`` or ``max_wait``,
   and conserves requests (admitted = batched exactly once, in order),
   for arbitrary arrival patterns and knob settings.
2. Workload generation is bit-deterministic: the same spec + seed gives
   the same request trace digest regardless of how often it is built.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.serve import (AdmissionQueue, MicroBatcher, WorkloadSpec,
                         build_requests, request_trace_digest)
from repro.serve.workload import Request
from repro.simcore import Simulator

pytestmark = pytest.mark.serve

gaps = st.lists(
    st.floats(min_value=0.0, max_value=0.5,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=40)


@settings(max_examples=80, deadline=None)
@given(gaps=gaps,
       max_batch_size=st.integers(min_value=1, max_value=8),
       max_wait=st.floats(min_value=0.0, max_value=0.3,
                          allow_nan=False, allow_infinity=False),
       capacity=st.integers(min_value=1, max_value=16))
def test_batcher_invariants(gaps, max_batch_size, max_wait, capacity):
    sim = Simulator()
    queue = AdmissionQueue(sim, capacity=capacity)
    jobs = []

    def dispatch(job):
        jobs.append(job)
        return
        yield  # pragma: no cover

    batcher = MicroBatcher(sim, queue, max_batch_size, max_wait, dispatch)
    admitted = []

    def producer(sim):
        rid = 0
        for gap in gaps:
            if gap:
                yield sim.timeout(gap)
            req = Request(rid=rid, arrival=sim.now,
                          seeds=np.array([rid], dtype=np.int64),
                          deadline=sim.now + 10.0)
            if queue.offer(req):
                admitted.append(rid)
            rid += 1
        queue.close()

    sim.process(producer(sim), name="producer")
    sim.process(batcher.run(), name="batcher")
    sim.run()

    # Size and wait caps hold exactly, for every sealed job.
    assert all(1 <= len(j) <= max_batch_size for j in jobs)
    assert all(j.wait <= max_wait + 1e-9 for j in jobs)
    # Conservation: every admitted request batched exactly once, FIFO.
    batched = [r.rid for j in jobs for r in j.requests]
    assert batched == admitted
    assert queue.offered == len(gaps)
    assert queue.shed == len(gaps) - len(admitted)
    assert len(queue) == 0
    queue.check_invariants()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       kind=st.sampled_from(["poisson", "closed"]),
       num_requests=st.integers(min_value=1, max_value=50),
       seeds_per_request=st.integers(min_value=1, max_value=4),
       rate=st.floats(min_value=1.0, max_value=1e4))
def test_same_seed_streams_bit_identical(seed, kind, num_requests,
                                         seeds_per_request, rate):
    pool = np.arange(64, dtype=np.int64)
    spec = WorkloadSpec(kind=kind, rate=rate, num_requests=num_requests,
                        seeds_per_request=seeds_per_request, seed=seed)
    digests = {request_trace_digest(build_requests(spec, pool, slo=0.05))
               for _ in range(3)}
    assert len(digests) == 1
