"""Workload generators: determinism, shapes, arrival laws."""

import math

import numpy as np
import pytest

from repro.serve import WorkloadSpec, build_requests, request_trace_digest
from repro.serve.config import ConfigError

pytestmark = pytest.mark.serve

POOL = np.arange(100, dtype=np.int64)


def test_same_seed_bit_identical():
    """Same spec + seed -> bit-identical request trace (digest equal)."""
    spec = WorkloadSpec(kind="poisson", rate=500.0, num_requests=64,
                        seeds_per_request=3, seed=7)
    d1 = request_trace_digest(build_requests(spec, POOL, slo=0.05))
    d2 = request_trace_digest(build_requests(spec, POOL, slo=0.05))
    assert d1 == d2


def test_different_seed_different_trace():
    spec = WorkloadSpec(kind="poisson", rate=500.0, num_requests=64, seed=7)
    other = spec.with_(seed=8)
    assert (request_trace_digest(build_requests(spec, POOL, slo=0.05))
            != request_trace_digest(build_requests(other, POOL, slo=0.05)))


def test_poisson_arrivals_sorted_and_deadlined():
    spec = WorkloadSpec(kind="poisson", rate=200.0, num_requests=50, seed=1)
    reqs = build_requests(spec, POOL, slo=0.02)
    arrivals = [r.arrival for r in reqs]
    assert arrivals == sorted(arrivals)
    assert all(a > 0 for a in arrivals)
    assert all(r.deadline == pytest.approx(r.arrival + 0.02) for r in reqs)
    assert [r.rid for r in reqs] == list(range(50))


def test_poisson_mean_gap_tracks_rate():
    spec = WorkloadSpec(kind="poisson", rate=100.0, num_requests=400, seed=3)
    reqs = build_requests(spec, POOL, slo=0.05)
    mean_gap = reqs[-1].arrival / len(reqs)
    assert mean_gap == pytest.approx(1.0 / 100.0, rel=0.2)


def test_trace_arrivals_verbatim():
    arrivals = (0.001, 0.002, 0.01, 0.5)
    spec = WorkloadSpec(kind="trace", num_requests=4, arrivals=arrivals)
    reqs = build_requests(spec, POOL, slo=0.05)
    assert [r.arrival for r in reqs] == list(arrivals)


def test_closed_loop_arrivals_stamped_later():
    spec = WorkloadSpec(kind="closed", num_requests=8, num_clients=2)
    reqs = build_requests(spec, POOL, slo=0.05)
    assert all(math.isnan(r.arrival) for r in reqs)


def test_seeds_unique_within_request_and_from_pool():
    spec = WorkloadSpec(kind="poisson", rate=100.0, num_requests=30,
                        seeds_per_request=5, seed=2)
    for req in build_requests(spec, POOL, slo=0.05):
        assert len(np.unique(req.seeds)) == len(req.seeds) == 5
        assert np.isin(req.seeds, POOL).all()


def test_spec_validation():
    with pytest.raises(ConfigError):
        WorkloadSpec(kind="bursty")
    with pytest.raises(ConfigError):
        WorkloadSpec(kind="poisson", rate=0.0)
    with pytest.raises(ConfigError):
        WorkloadSpec(kind="trace", num_requests=3, arrivals=(0.1, 0.2))
    with pytest.raises(ConfigError):
        WorkloadSpec(kind="trace", num_requests=2, arrivals=(0.2, 0.1))
    with pytest.raises(ValueError, match="empty seed pool"):
        build_requests(WorkloadSpec(num_requests=1),
                       np.array([], dtype=np.int64), slo=0.05)
