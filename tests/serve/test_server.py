"""End-to-end serving runs on the tiny dataset under the sanitizer."""

import pytest

from repro.serve import ServeScenario, run_serve_scenario

pytestmark = pytest.mark.serve

BASE = ServeScenario(name="t-serve", dataset="tiny", rate=300.0,
                     num_requests=24, slo=0.05)


def _run_ok(scenario):
    run = run_serve_scenario(scenario)
    assert run.ok, run.error
    assert run.clean, run.findings
    run.stats.check_accounting()
    return run


def test_async_backend_end_to_end():
    run = _run_ok(BASE)
    s = run.stats
    assert s.backend == "async"
    assert s.offered == 24
    assert s.completed + s.shed + s.timed_out == s.offered
    assert s.completed > 0 and s.duration > 0
    assert s.num_batches > 0
    assert s.loaded_nodes > 0            # features came off the disk path
    assert s.goodput <= s.throughput + 1e-12
    assert 0.0 <= s.slo_attainment <= 1.0


def test_async_warm_standby_reuses_nodes():
    run = _run_ok(BASE.with_(num_requests=40))
    assert run.stats.reused_nodes > 0    # feature buffer kept rows warm


def test_sync_backend_end_to_end():
    run = _run_ok(BASE.with_(backend="sync"))
    s = run.stats
    assert s.backend == "sync"
    assert s.completed + s.shed + s.timed_out == s.offered
    assert s.cache_misses > 0            # went through the page cache


def test_same_seed_same_digest():
    r1 = run_serve_scenario(BASE)
    r2 = run_serve_scenario(BASE)
    assert r1.ok and r2.ok
    assert r1.digest and r1.digest == r2.digest
    assert r1.stats.completed == r2.stats.completed
    assert r1.stats.latency_p99 == r2.stats.latency_p99


def test_multi_replica_scale_out():
    run = _run_ok(BASE.with_(num_replicas=2, num_requests=32))
    s = run.stats
    assert s.completed + s.shed + s.timed_out == 32
    assert s.completed > 0


def test_closed_loop_clients():
    run = _run_ok(BASE.with_(kind="closed", num_requests=16))
    s = run.stats
    assert s.completed == 16             # closed loop never sheds
    assert s.shed == 0 and s.timed_out == 0


def test_overload_sheds_but_accounts():
    """A tiny queue under a burst sheds; the identity still holds."""
    run = run_serve_scenario(BASE.with_(rate=50000.0, num_requests=40,
                                        queue_capacity=2,
                                        max_batch_size=2))
    assert run.ok, run.error
    s = run.stats
    assert s.shed > 0
    s.check_accounting()
    assert s.completed + s.shed + s.timed_out == 40


@pytest.mark.faults
def test_chaos_plan_survival():
    run = _run_ok(BASE.with_(fault_plan="chaos", num_requests=32))
    s = run.stats
    assert s.faults.get("injected", 0) > 0
    assert s.completed + s.shed + s.timed_out == 32
