"""Tests for the bench report printers and experiment runner."""

import numpy as np
import pytest

from repro.bench import (
    QUICK,
    FULL,
    SystemResult,
    build_system,
    format_series,
    format_table,
    fmt_value,
    get_dataset,
    run_system,
)
from repro.bench.runner import SYSTEM_NAMES, active_profile
from repro.core.base import TrainConfig
from repro.machine import Machine, MachineSpec


def test_fmt_value_variants():
    assert fmt_value(None) == "-"
    assert fmt_value("OOM") == "OOM"
    assert fmt_value(float("nan")) == "nan"
    assert fmt_value(float("inf")) == "inf"
    assert fmt_value(0.0) == "0"
    assert fmt_value(1234.5678) == "1.23e+03"
    assert fmt_value(0.1234) == "0.123"
    assert fmt_value(42) == "42"


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2.5], ["OOM", None]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert "OOM" in out and "-" in out
    # All rows same width.
    widths = {len(l) for l in lines[1:]}
    assert len(widths) == 1


def test_format_series_bars():
    out = format_series("bw", [1, 2], [10.0, 20.0], "x", "MB/s")
    assert "bw" in out
    assert out.count("#") > 0
    out2 = format_series("s", [1], ["OOM"])
    assert "OOM" in out2


def test_format_series_all_zero():
    out = format_series("z", [1, 2], [0.0, 0.0])
    assert "0" in out


def test_profiles():
    assert QUICK.dataset_scale < FULL.dataset_scale
    assert QUICK.total_epochs == QUICK.epochs + QUICK.warmup_epochs
    assert active_profile().name in ("quick", "full")


def test_get_dataset_is_cached():
    a = get_dataset("tiny", scale=0.5)
    b = get_dataset("tiny", scale=0.5)
    assert a is b
    c = get_dataset("tiny", scale=0.4)
    assert c is not a


def test_build_system_all_names():
    for name in SYSTEM_NAMES:
        ds = get_dataset("tiny")
        machine = Machine(MachineSpec.paper_scaled(host_gb=64))
        sut = build_system(name, machine, ds, TrainConfig(batch_size=20))
        assert sut is not None
    with pytest.raises(ValueError):
        build_system("bogus", Machine(MachineSpec.paper_scaled()), ds,
                     TrainConfig())


def test_run_system_ok_path():
    ds = get_dataset("tiny")
    res = run_system("gnndrive-gpu", ds, TrainConfig(batch_size=20),
                     epochs=1, warmup_epochs=1)
    assert res.ok
    assert res.status == "ok"
    assert res.epoch_time > 0
    assert len(res.stats) == 2
    assert isinstance(res.cell(), float)


def test_run_system_oom_marker():
    ds = get_dataset("tiny")
    spec = MachineSpec.paper_scaled(host_gb=32, gpu_capacity=1 << 12)
    res = run_system("gnndrive-gpu", ds, TrainConfig(batch_size=20),
                     machine_spec=spec, epochs=1)
    assert res.status == "OOM"
    assert res.cell() == "OOM"
    assert not res.ok
    assert "OOM" in res.error


def test_run_system_oot_marker():
    ds = get_dataset("tiny")
    res = run_system("pyg+", ds, TrainConfig(batch_size=20),
                     epochs=5, warmup_epochs=0, time_budget=1e-9)
    assert res.status == "OOT"


def test_run_system_keep_machine():
    ds = get_dataset("tiny")
    res = run_system("gnndrive-gpu", ds, TrainConfig(batch_size=20),
                     epochs=1, warmup_epochs=0, keep_machine=True)
    assert res.machine is not None
    assert res.machine.ssd.bytes_read > 0


def test_data_scale_shrinks_machine():
    ds = get_dataset("tiny", scale=0.5)
    res = run_system("gnndrive-gpu", ds, TrainConfig(batch_size=10),
                     epochs=1, warmup_epochs=0, data_scale=0.5,
                     keep_machine=True)
    full = MachineSpec.paper_scaled(host_gb=32)
    assert res.machine.spec.host_capacity == pytest.approx(
        full.host_capacity * 0.5, rel=0.01)


def test_results_io_roundtrip(tmp_path):
    import numpy as np
    from repro.bench.experiments import ExperimentResult
    from repro.bench.results_io import load_result, save_result

    result = ExperimentResult(
        "figX", "demo", tables=["t"], notes=["n"],
        data={("sys", 128): 0.5, "arr": np.arange(3),
              "nan": float("nan"), "np": np.float32(1.5)})
    path = str(tmp_path / "r.json")
    save_result(result, path)
    doc = load_result(path)
    assert doc["name"] == "figX"
    assert doc["data"]["sys | 128"] == 0.5
    assert doc["data"]["arr"] == [0, 1, 2]
    assert doc["data"]["nan"] == "nan"
    assert doc["data"]["np"] == 1.5


def test_load_result_rejects_foreign_json(tmp_path):
    import json
    import pytest
    from repro.bench.results_io import load_result

    path = tmp_path / "x.json"
    path.write_text(json.dumps({"foo": 1}))
    with pytest.raises(ValueError):
        load_result(str(path))
