"""EpochStats (with fault ledger) survive the JSON artifact round-trip.

An experiment artifact is only useful if a saved run can be reloaded
and re-rendered without re-running the simulator; EpochStats carries
nested dataclasses (StageBreakdown), NaN accuracies, numpy scalars and
the per-epoch ``faults`` ledger — every one of which has a JSON trap.
"""

import math

import numpy as np
import pytest

from repro.bench.experiments import ExperimentResult
from repro.bench.report import format_table
from repro.bench.results_io import load_result, result_to_dict, save_result
from repro.core.stats import EpochStats, StageBreakdown


def _stats() -> EpochStats:
    stages = StageBreakdown(sample=0.25, extract=0.5, train=0.125,
                            release=0.0625)
    s = EpochStats(epoch=1, epoch_time=np.float64(1.5), stages=stages,
                   loss=0.75, train_acc=0.5, val_acc=float("nan"),
                   num_batches=np.int64(12), bytes_read=4096,
                   cache_hits=10, cache_misses=2, reused_nodes=3,
                   loaded_nodes=9,
                   faults={"injected": 4, "recovered": np.int64(4)})
    s.extra["feat_bytes_read"] = np.int64(2048)
    return s


def test_epoch_stats_round_trip(tmp_path):
    result = ExperimentResult(
        name="rt", title="round trip",
        tables=[format_table(["epoch", "time"], [[1, 1.5]], "t")],
        notes=["synthetic"],
        data={"stats": [_stats()], ("gnndrive-gpu", 32): 1.5})
    path = str(tmp_path / "artifact.json")
    save_result(result, path)
    doc = load_result(path)

    assert doc["name"] == "rt" and doc["notes"] == ["synthetic"]
    loaded = doc["data"]["stats"][0]
    assert loaded["epoch"] == 1
    assert loaded["epoch_time"] == pytest.approx(1.5)
    assert loaded["stages"]["sample"] == pytest.approx(0.25)
    assert loaded["num_batches"] == 12
    # NaN is not valid JSON; it must come back as a tagged string.
    assert loaded["val_acc"] == "nan"
    assert loaded["faults"] == {"injected": 4, "recovered": 4}
    assert loaded["extra"]["feat_bytes_read"] == 2048
    # Tuple keys flatten to readable strings.
    assert doc["data"]["gnndrive-gpu | 32"] == pytest.approx(1.5)


def test_loaded_artifact_renders(tmp_path):
    """A reloaded artifact still renders a readable report."""
    result = ExperimentResult(
        name="rt2", title="render after load",
        tables=[format_table(["system", "epoch (s)"],
                             [["gnndrive-gpu", 1.5]], "cmp")],
        data={"stats": [_stats()]})
    path = str(tmp_path / "artifact.json")
    save_result(result, path)
    doc = load_result(path)
    rendered = ExperimentResult(
        name=doc["name"], title=doc["title"], tables=doc["tables"],
        notes=doc["notes"], data=doc["data"]).render()
    assert "rt2" in rendered
    assert "gnndrive-gpu" in rendered


def test_load_rejects_foreign_json(tmp_path):
    path = str(tmp_path / "junk.json")
    with open(path, "w") as fh:
        fh.write('{"name": "x"}')
    with pytest.raises(ValueError, match="missing"):
        load_result(path)


def test_jsonable_handles_nan_and_inf():
    from repro.bench.results_io import _jsonable
    assert _jsonable(float("nan")) == "nan"
    assert _jsonable(float("inf")) == "inf"
    assert math.isclose(_jsonable(np.float32(0.5)), 0.5)
    assert _jsonable(np.arange(3)) == [0, 1, 2]
    assert _jsonable({("a", 1): {2: 3}}) == {"a | 1": {"2": 3}}


def test_fault_ledger_markdown_round_trip(tmp_path):
    """The markdown fault-ledger table renders from reloaded stats.

    Regression: the markdown report used to omit the fault ledger, so
    chaos artifacts rendered identically to clean ones.
    """
    from repro.bench.report import (format_fault_ledger_markdown,
                                    markdown_report)
    chaos = _stats()
    clean = _stats()
    clean.faults = {}
    result = ExperimentResult(
        name="ledger", title="ledger round trip",
        data={"per_system": {"gnndrive-gpu": [chaos], "pyg+": [clean]}})
    path = str(tmp_path / "ledger.json")
    save_result(result, path)
    per_system = load_result(path)["data"]["per_system"]

    table = format_fault_ledger_markdown(per_system)
    # One row per system, one column per counter, chaos counts intact.
    assert "| system | injected | recovered |" in table
    assert "| gnndrive-gpu | 4 | 4 |" in table
    assert "| pyg+ | 0 | 0 |" in table

    report = markdown_report("ledger round trip", per_system)
    assert "## Fault ledger" in report
    assert "| gnndrive-gpu | 4 | 4 |" in report


def test_fault_ledger_markdown_empty():
    from repro.bench.report import format_fault_ledger_markdown
    clean = _stats()
    clean.faults = {}
    assert "No faults recorded" in format_fault_ledger_markdown(
        {"in-memory": [clean]})


def test_serve_stats_round_trip(tmp_path):
    """ServeStats (latency quantiles, ledger, extra) survive save/load."""
    from repro.core.stats import ServeStats

    s = ServeStats(backend="async", offered=40, completed=38, shed=1,
                   timed_out=1, slo=0.05, slo_miss=2, duration=0.5,
                   offered_rate=np.float64(80.0), latency_p50=0.004,
                   latency_p95=0.02, latency_p99=float("nan"),
                   num_batches=np.int64(9), mean_batch_size=4.2,
                   bytes_read=8192, faults={"injected": 2})
    s.extra["queue_peak_depth"] = np.int64(7)
    result = ExperimentResult(name="serve-rt", title="serve round trip",
                              data={"stats": [s]})
    path = str(tmp_path / "serve.json")
    save_result(result, path)
    loaded = load_result(path)["data"]["stats"][0]
    assert loaded["backend"] == "async"
    assert loaded["offered"] == 40
    assert loaded["offered_rate"] == pytest.approx(80.0)
    assert loaded["latency_p99"] == "nan"
    assert loaded["faults"] == {"injected": 2}
    assert loaded["extra"]["queue_peak_depth"] == 7
