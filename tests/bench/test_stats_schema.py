"""The enriched ``stats`` schema survives the artifact round-trip, and
``compare`` degrades gracefully on pre-stats artifacts.

JSON traps exercised here: NaN / inf metric fields (invalid JSON —
stored as tagged strings and restored to floats on load), numpy scalars
leaking in from summaries, and the legacy single-shot ``BENCH_*.json``
layout that predates the stats block entirely.
"""

import math

import numpy as np
import pytest

from repro.bench import stats as bstats
from repro.bench.results_io import (has_stats, load_artifact,
                                    metric_is_finite, save_artifact,
                                    stats_metrics)

pytestmark = pytest.mark.benchstat


def _artifact():
    metrics = bstats.summarize_metrics(
        {"a.epoch_time_s": [1.0, 1.1, 0.9, 1.05, 0.95],
         "a.wall_s": [0.2, 0.22, 0.19, 0.21, 0.2],
         "a.dropped": [0.0] * 5},
        {"epoch_time_s": bstats.SIM_S, "wall_s": bstats.WALL_S,
         "dropped": bstats.COUNT_BAD}, ci_seed=0)
    return {"ok": True,
            "stats": bstats.build_stats_block(
                metrics, bstats.RunPlan(runs=5, warmup=1),
                config={"bench": "unit", "epochs": 2})}


def test_round_trip_preserves_summaries(tmp_path):
    doc = _artifact()
    path = str(tmp_path / "BENCH_unit.json")
    save_artifact(doc, path)
    loaded = load_artifact(path)

    assert has_stats(loaded)
    assert loaded["stats"]["schema"] == bstats.STATS_SCHEMA
    assert loaded["stats"]["run_plan"] == {"runs": 5, "warmup": 1,
                                           "seed": 0}
    got = stats_metrics(loaded)["a.epoch_time_s"]
    want = doc["stats"]["metrics"]["a.epoch_time_s"]
    for key in ("n", "mean", "stddev", "p50", "p90", "ci_low", "ci_high"):
        assert got[key] == pytest.approx(want[key])
    assert got["samples"] == pytest.approx(want["samples"])
    assert got["kind"] == "simulated" and got["direction"] == "lower"


def test_round_trip_fingerprint(tmp_path):
    doc = _artifact()
    path = str(tmp_path / "BENCH_unit.json")
    save_artifact(doc, path)
    fp = load_artifact(path)["stats"]["fingerprint"]
    for key in ("python", "numpy", "platform", "machine", "config",
                "config_hash", "commit"):
        assert key in fp
    assert fp["config"]["bench"] == "unit"
    assert fp["config_hash"] == bstats.config_hash({"bench": "unit",
                                                    "epochs": 2})


def test_round_trip_nan_inf_numpy_traps(tmp_path):
    """NaN/inf summary fields and numpy scalars must survive the trip
    as *floats*, not as the tagged strings the JSON layer stores."""
    doc = _artifact()
    m = doc["stats"]["metrics"]["a.epoch_time_s"]
    m["stddev"] = float("nan")
    m["ci_high"] = float("inf")
    m["mean"] = np.float64(1.25)
    m["samples"] = [np.float32(1.0), float("nan"), 2.0]
    path = str(tmp_path / "BENCH_traps.json")
    save_artifact(doc, path)
    got = load_artifact(path)["stats"]["metrics"]["a.epoch_time_s"]

    assert math.isnan(got["stddev"])
    assert got["ci_high"] == float("inf")
    assert got["mean"] == pytest.approx(1.25)
    assert got["samples"][0] == pytest.approx(1.0)
    assert math.isnan(got["samples"][1])
    # Finiteness is judged on the mean (NaN spread fields are allowed:
    # they just mean "no variance information").
    assert metric_is_finite(got)
    got["mean"] = float("nan")
    assert not metric_is_finite(got)


def test_reloaded_artifacts_compare_cleanly(tmp_path):
    """save -> load -> compare(A, A): the tagged-string restoration is
    good enough for the full statistical path, not just display."""
    doc = _artifact()
    path = str(tmp_path / "BENCH_unit.json")
    save_artifact(doc, path)
    loaded = load_artifact(path)
    report = bstats.compare_artifacts(loaded, loaded)
    assert report.regressions() == []
    assert report.improvements() == []
    assert not report.removed and not report.added


# ----------------------------------------------------------------------
# Legacy (pre-stats) artifacts
# ----------------------------------------------------------------------
LEGACY_HOTPATH = {
    "artifact": "hotpath-microbenchmarks",
    "benches": [
        {"name": "page_cache_access", "n_ops": 479795,
         "reference_s": 0.40, "vectorized_s": 0.05, "speedup": 8.0},
    ],
    "targets_met": True,
}

LEGACY_FAULTS = {
    "completed": True,
    "systems": [
        {"system": "gnndrive-gpu", "status": "ok",
         "ledger": {"injected": 12, "retried": 3, "recovered": 12,
                    "dropped": 0},
         "epoch_times": [2.0, 1.8]},
    ],
}


def test_legacy_artifact_yields_single_shot_metrics():
    metrics, warnings = bstats.extract_metrics(LEGACY_HOTPATH)
    assert metrics["page_cache_access.speedup"]["n"] == 1
    assert metrics["page_cache_access.speedup"]["mean"] == pytest.approx(8.0)
    assert any("no-variance baseline" in w for w in warnings)

    metrics, _ = bstats.extract_metrics(LEGACY_FAULTS)
    assert metrics["gnndrive-gpu.injected"]["mean"] == 12
    assert metrics["gnndrive-gpu.epoch_time_s"]["mean"] == pytest.approx(1.9)


def test_legacy_compare_degrades_gracefully(tmp_path):
    """Old single-shot baseline vs. new enriched artifact: compare runs
    in threshold-only mode and says so, instead of crashing."""
    new = {"benches": LEGACY_HOTPATH["benches"],
           "stats": bstats.build_stats_block(
               bstats.summarize_metrics(
                   {"page_cache_access.speedup": [7.9, 8.1, 8.0, 8.2, 7.8]},
                   {"speedup": bstats.RATIO_UP}),
               bstats.RunPlan(runs=5))}
    report = bstats.compare_artifacts(LEGACY_HOTPATH, new)
    assert any("no-variance baseline" in w for w in report.warnings)
    (cmp,) = [c for c in report.comparisons
              if c.name == "page_cache_access.speedup"]
    assert "no-variance baseline" in " ".join(cmp.notes)
    assert cmp.classification == "unchanged"

    # A real drop still trips the threshold-only gate.
    bad = {"benches": [dict(LEGACY_HOTPATH["benches"][0], speedup=2.0)]}
    report = bstats.compare_artifacts(LEGACY_HOTPATH, bad)
    (cmp,) = [c for c in report.comparisons
              if c.name == "page_cache_access.speedup"]
    assert cmp.classification == "regressed"
    assert report.regressions(gate_kinds=("ratio",)) == [cmp]


def test_unrecognizable_artifact_warns():
    metrics, warnings = bstats.extract_metrics({"name": "junk"})
    assert metrics == {}
    assert any("no stats block" in w for w in warnings)


def test_fingerprint_mismatch_warns():
    a, b = _artifact(), _artifact()
    b["stats"]["fingerprint"]["config_hash"] = "deadbeef"
    report = bstats.compare_artifacts(a, b)
    assert any("fingerprint mismatch: config_hash" in w
               for w in report.warnings)


def test_gate_kinds_excludes_wall_metrics():
    """A wall-clock regression must not fail a simulated/count gate —
    the cross-machine CI contract."""
    old = {"stats": bstats.build_stats_block(
        bstats.summarize_metrics({"a.wall_s": [1.0, 1.01, 0.99, 1.0, 1.0]},
                                 {"wall_s": bstats.WALL_S}),
        bstats.RunPlan(runs=5))}
    new = {"stats": bstats.build_stats_block(
        bstats.summarize_metrics({"a.wall_s": [2.0, 2.01, 1.99, 2.0, 2.0]},
                                 {"wall_s": bstats.WALL_S}),
        bstats.RunPlan(runs=5))}
    report = bstats.compare_artifacts(old, new)
    assert len(report.regressions()) == 1
    assert report.regressions(gate_kinds=("simulated", "count")) == []
