"""Tier-1 smoke: one tiny bench end-to-end through the repeated-run
executor, the enriched artifact schema, and the ``compare`` CLI gate.

This is the cheap proof that the statistical layer's pieces actually
compose: executor -> summaries -> fingerprinted artifact -> save/load
-> ``python -m repro.bench compare --fail-on-regression`` exit codes.
The heavyweight benches reuse exactly these paths.
"""

import numpy as np
import pytest

from repro.bench import stats as bstats
from repro.bench.__main__ import main as bench_main
from repro.bench.results_io import load_artifact, save_artifact

pytestmark = pytest.mark.benchstat

#: Small but non-trivial: enough work for nonzero wall samples.
_PLAN = bstats.RunPlan(runs=3, warmup=1, seed=0)


def _tiny_bench(scale: float) -> dict:
    """A miniature two-case bench through the interleaved executor:
    sorting vs. cumulative-summing the same array, with a deterministic
    'simulated' byproduct per case."""
    rng = np.random.default_rng(0)
    data = rng.standard_normal(20_000)

    def case(fn, simulated):
        def measure(_rep: int) -> dict:
            _, dt = bstats.timed_call(lambda: fn(data))
            return {"wall_s": dt, "checksum": simulated}
        return measure

    samples = bstats.interleaved_measure(
        {"sort": case(np.sort, 100.0 * scale),
         "cumsum": case(np.cumsum, 40.0 * scale)}, _PLAN)
    metrics = bstats.summarize_metrics(
        samples, {"wall_s": bstats.WALL_S, "checksum": bstats.SIM_S},
        ci_seed=_PLAN.seed)
    return {"ok": True,
            "stats": bstats.build_stats_block(
                metrics, _PLAN, config={"bench": "tiny", "scale": scale})}


def test_executor_shape():
    doc = _tiny_bench(1.0)
    metrics = doc["stats"]["metrics"]
    assert set(metrics) == {"sort.wall_s", "sort.checksum",
                            "cumsum.wall_s", "cumsum.checksum"}
    for m in metrics.values():
        assert m["n"] == _PLAN.runs
        assert len(m["samples"]) == _PLAN.runs
    assert all(s > 0 for s in metrics["sort.wall_s"]["samples"])
    assert doc["stats"]["run_plan"] == _PLAN.to_dict()
    assert doc["stats"]["fingerprint"]["config"]["bench"] == "tiny"


def test_compare_cli_same_seed_passes(tmp_path, capsys):
    """Two artifacts from the same deterministic bench: the gate must
    exit 0 — the acceptance criterion that same-seed re-runs never
    trip the regression gate."""
    old, new = str(tmp_path / "old.json"), str(tmp_path / "new.json")
    save_artifact(_tiny_bench(1.0), old)
    save_artifact(_tiny_bench(1.0), new)
    rc = bench_main(["compare", old, new, "--fail-on-regression",
                     "--gate-kinds", "simulated,count"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "## Bench comparison" in out
    assert "REGRESSED" not in out


def test_compare_cli_perturbed_fails(tmp_path, capsys):
    """A perturbed simulated metric must be reported as a regression
    and flip the exit code to 1."""
    old, new = str(tmp_path / "old.json"), str(tmp_path / "new.json")
    save_artifact(_tiny_bench(1.0), old)
    save_artifact(_tiny_bench(1.2), new)
    report_md = str(tmp_path / "report.md")
    rc = bench_main(["compare", old, new, "--fail-on-regression",
                     "--gate-kinds", "simulated,count",
                     "--report", report_md])
    assert rc == 1
    assert "REGRESSED" in capsys.readouterr().out
    with open(report_md) as fh:
        text = fh.read()
    assert "sort.checksum" in text and "✗ REGRESSED" in text
    # fingerprint config hash differs (scale changed) -> warned.
    assert "fingerprint mismatch: config_hash" in text


def test_compare_cli_without_gate_exits_zero(tmp_path, capsys):
    """Without --fail-on-regression the compare is informational."""
    old, new = str(tmp_path / "old.json"), str(tmp_path / "new.json")
    save_artifact(_tiny_bench(1.0), old)
    save_artifact(_tiny_bench(1.2), new)
    assert bench_main(["compare", old, new, "--quiet"]) == 0
    assert bench_main(["compare", old, str(tmp_path / "missing.json"),
                       "--quiet"]) == 2
    capsys.readouterr()


def test_round_trip_then_gate(tmp_path):
    """load_artifact feeds compare_artifacts losslessly."""
    path = str(tmp_path / "a.json")
    doc = _tiny_bench(1.0)
    save_artifact(doc, path)
    report = bstats.compare_artifacts(load_artifact(path),
                                      load_artifact(path))
    assert report.regressions() == []
    assert {c.name for c in report.comparisons} == set(
        doc["stats"]["metrics"])
