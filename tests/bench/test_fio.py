"""Tests for the fio-style storage microbenchmark."""

import pytest

from repro.bench.fio import IoResult, run_async, run_sync, sweep


def test_sync_single_thread_bandwidth_matches_model():
    r = run_sync(1, requests_per_thread=100)
    # One thread: bandwidth = size / service_time.
    from repro.storage import PM883
    expected = 512 / PM883.service_time(512)
    assert r.bandwidth == pytest.approx(expected, rel=0.01)
    assert r.requests == 100


def test_sync_threads_scale_until_channels():
    r1 = run_sync(1, requests_per_thread=64)
    r8 = run_sync(8, requests_per_thread=64)
    r32 = run_sync(32, requests_per_thread=64)
    assert r8.bandwidth == pytest.approx(8 * r1.bandwidth, rel=0.05)
    assert r32.bandwidth < 1.2 * r8.bandwidth  # saturated at 8 channels


def test_async_depth_matches_sync_threads():
    """The Appendix-B equivalence the paper leans on."""
    for n in (2, 8, 32):
        sync = run_sync(n, requests_per_thread=64)
        asyn = run_async(n, num_requests=n * 64)
        assert asyn.bandwidth == pytest.approx(sync.bandwidth, rel=0.1)


def test_async_latency_grows_with_depth():
    shallow = run_async(1, num_requests=256)
    deep = run_async(32, num_requests=256)
    assert deep.mean_latency > shallow.mean_latency
    assert deep.bandwidth > shallow.bandwidth


def test_buffered_mode_uses_page_sized_requests():
    direct = run_async(8, num_requests=200, buffered=False)
    buffered = run_async(8, num_requests=200, buffered=True)
    # Same request count, 8x the bytes per request -> more total time.
    assert buffered.total_time > direct.total_time


def test_sweep_structure():
    grid = sweep(threads=(1, 4), depths=(1, 4))
    assert set(grid) == {"sync", "async"}
    assert set(grid["sync"]) == {1, 4}
    assert all(isinstance(v, IoResult) for v in grid["async"].values())
