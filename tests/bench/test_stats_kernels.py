"""Deterministic fixtures + properties for the ``repro.bench.stats``
kernels.

The Welch / incomplete-beta fixtures below were computed independently
(scipy ``ttest_ind(equal_var=False)`` / ``special.betainc``) and are
hard-coded so the suite itself never needs scipy — the kernels under
test are pure numpy + ``math`` and must stay that way.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import stats as bstats

pytestmark = pytest.mark.benchstat


# ----------------------------------------------------------------------
# Regularized incomplete beta
# ----------------------------------------------------------------------
@pytest.mark.parametrize("a, b, x, want", [
    # I_x(1, 1) is the identity.
    (1.0, 1.0, 0.25, 0.25),
    (1.0, 1.0, 0.75, 0.75),
    # Closed forms: I_x(1/2, 1/2) = (2/pi) asin(sqrt(x)).
    (0.5, 0.5, 0.25, 2.0 / math.pi * math.asin(0.5)),
    # I_x(2, 3) = 6x^2 - 8x^3 + 3x^4.
    (2.0, 3.0, 0.5, 0.6875),
    # Symmetry endpoint values.
    (3.0, 4.0, 0.0, 0.0),
    (3.0, 4.0, 1.0, 1.0),
])
def test_betainc_fixtures(a, b, x, want):
    assert bstats.betainc(a, b, x) == pytest.approx(want, abs=1e-10)


def test_betainc_symmetry():
    # I_x(a, b) = 1 - I_{1-x}(b, a), the identity the continued
    # fraction relies on for convergence.
    for a, b, x in [(2.0, 5.0, 0.3), (0.5, 3.5, 0.8), (4.0, 4.0, 0.5)]:
        assert bstats.betainc(a, b, x) == pytest.approx(
            1.0 - bstats.betainc(b, a, 1.0 - x), abs=1e-12)


# ----------------------------------------------------------------------
# Welch's t-test
# ----------------------------------------------------------------------
#: (a, b, t, df, p) computed with scipy.stats.ttest_ind(equal_var=False).
WELCH_FIXTURES = [
    ([2.1, 2.3, 1.9, 2.2, 2.0], [2.8, 3.1, 2.9, 3.0, 3.2],
     -9.0, 8.0, 1.8531184296430153e-05),
    ([10.0, 10.5, 9.8, 10.2, 10.1, 9.9], [10.0, 10.6, 9.7, 10.4, 10.3, 9.8],
     -0.28221626051507326, 8.935619314205729, 0.7842052780311772),
    ([1.0, 2.0, 3.0, 4.0], [1.5, 2.5, 3.5, 4.5, 5.5],
     -1.044465935734187, 6.980769230769231, 0.33108326983868364),
]


@pytest.mark.parametrize("a, b, t, df, p", WELCH_FIXTURES)
def test_welch_fixtures(a, b, t, df, p):
    res = bstats.welch_t_test(a, b)
    assert res.t == pytest.approx(t, rel=1e-9)
    assert res.df == pytest.approx(df, rel=1e-9)
    assert res.p_value == pytest.approx(p, rel=1e-6)


def test_welch_symmetry():
    a, b = [2.1, 2.3, 1.9, 2.2, 2.0], [2.8, 3.1, 2.9, 3.0, 3.2]
    fwd, rev = bstats.welch_t_test(a, b), bstats.welch_t_test(b, a)
    assert fwd.t == pytest.approx(-rev.t)
    assert fwd.p_value == pytest.approx(rev.p_value)


def test_welch_degenerate_sizes():
    # Fewer than two observations on either side: no variance
    # estimate, NaN p-value (compare falls back to threshold-only).
    res = bstats.welch_t_test([1.0], [1.0, 2.0, 3.0])
    assert math.isnan(res.p_value)


def test_welch_zero_variance():
    # Identical constants: trivially equal (p=1); distinct constants:
    # trivially different (p=0) — deterministic simulator metrics hit
    # exactly these two branches.
    assert bstats.welch_t_test([3.0, 3.0], [3.0, 3.0]).p_value == 1.0
    assert bstats.welch_t_test([3.0, 3.0], [4.0, 4.0]).p_value == 0.0


# ----------------------------------------------------------------------
# Bootstrap CI
# ----------------------------------------------------------------------
def test_bootstrap_fixture():
    lo, hi = bstats.bootstrap_ci([2.1, 2.3, 1.9, 2.2, 2.0], seed=0)
    assert lo == pytest.approx(1.98)
    assert hi == pytest.approx(2.22)


def test_bootstrap_deterministic_and_seeded():
    xs = [1.0, 1.4, 0.9, 1.2, 1.1, 1.3]
    assert bstats.bootstrap_ci(xs, seed=7) == bstats.bootstrap_ci(xs, seed=7)
    assert bstats.bootstrap_ci(xs, seed=7) != bstats.bootstrap_ci(xs, seed=8)


def test_bootstrap_degenerate():
    assert bstats.bootstrap_ci([5.0]) == (5.0, 5.0)
    assert bstats.bootstrap_ci([5.0, 5.0, 5.0]) == (5.0, 5.0)
    with pytest.raises(ValueError):
        bstats.bootstrap_ci([])


# ----------------------------------------------------------------------
# Regression classification fixtures
# ----------------------------------------------------------------------
def _metric(samples, spec):
    return bstats.summarize(samples, spec, ci_seed=0)


def test_classify_regressed_lower_is_better():
    old = _metric([1.00, 1.02, 0.98, 1.01, 0.99], bstats.SIM_S)
    new = _metric([1.50, 1.52, 1.48, 1.51, 1.49], bstats.SIM_S)
    cmp = bstats.compare_metric("epoch_time_s", old, new)
    assert cmp.classification == "regressed"
    assert cmp.significant and cmp.ci_overlap is False
    assert cmp.delta_pct == pytest.approx(50.0)


def test_classify_improved_higher_is_better():
    old = _metric([2.0, 2.1, 1.9, 2.0, 2.0], bstats.RATIO_UP)
    new = _metric([4.0, 4.1, 3.9, 4.0, 4.0], bstats.RATIO_UP)
    cmp = bstats.compare_metric("speedup", old, new)
    assert cmp.classification == "improved"


def test_classify_unchanged_below_threshold():
    old = _metric([1.00, 1.02, 0.98, 1.01, 0.99], bstats.SIM_S)
    new = _metric([1.01, 1.03, 0.99, 1.02, 1.00], bstats.SIM_S)
    cmp = bstats.compare_metric("epoch_time_s", old, new)
    assert cmp.classification == "unchanged"


def test_classify_unchanged_when_not_significant():
    # A 10% mean shift entirely explained by noise: moved past the
    # threshold but overlapping CIs + insignificant Welch => unchanged.
    old = _metric([1.0, 2.0, 0.5, 1.5, 1.0], bstats.SIM_S)
    new = _metric([1.1, 2.3, 0.4, 1.8, 1.0], bstats.SIM_S)
    cmp = bstats.compare_metric("epoch_time_s", old, new)
    assert abs(cmp.delta_pct) >= 5.0
    assert cmp.classification == "unchanged"


def test_classify_info_never_gated():
    old = _metric([100.0] * 5, bstats.COUNT_INFO)
    new = _metric([900.0] * 5, bstats.COUNT_INFO)
    assert bstats.compare_metric("steps", old, new).classification == "info"


def test_classify_deterministic_zero_variance_shift():
    # A deterministic simulated metric that moved: zero variance on
    # both sides gives p=0 and disjoint degenerate CIs => regressed.
    old = _metric([2.0] * 5, bstats.SIM_S)
    new = _metric([3.0] * 5, bstats.SIM_S)
    cmp = bstats.compare_metric("epoch_time_s", old, new)
    assert cmp.classification == "regressed"
    assert cmp.p_value == 0.0


# ----------------------------------------------------------------------
# Hypothesis properties
# ----------------------------------------------------------------------
finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)
sample_lists = st.lists(finite_floats, min_size=2, max_size=12)


@settings(max_examples=50, deadline=None)
@given(samples=sample_lists, seed=st.integers(0, 2**16))
def test_property_ci_contains_mean(samples, seed):
    lo, hi = bstats.bootstrap_ci(samples, seed=seed)
    mean = float(np.mean(samples))
    assert lo <= mean + 1e-9 and mean - 1e-9 <= hi


@settings(max_examples=50, deadline=None)
@given(metric_samples=st.dictionaries(
    st.sampled_from(["epoch_time_s", "speedup", "wall_s", "dropped"]),
    sample_lists, min_size=1, max_size=4))
def test_property_compare_self_is_never_classified(metric_samples):
    specs = {"epoch_time_s": bstats.SIM_S, "speedup": bstats.RATIO_UP,
             "wall_s": bstats.WALL_S, "dropped": bstats.COUNT_BAD}
    metrics = {name: bstats.summarize(xs, specs[name], ci_seed=0)
               for name, xs in metric_samples.items()}
    doc = {"stats": bstats.build_stats_block(
        metrics, bstats.RunPlan(runs=len(next(iter(metric_samples.values()))),
                                warmup=0))}
    report = bstats.compare_artifacts(doc, doc)
    assert report.regressions() == []
    assert report.improvements() == []
    assert all(c.classification in ("unchanged", "info")
               for c in report.comparisons)


@settings(max_examples=25, deadline=None)
@given(old=st.lists(sample_lists, min_size=2, max_size=5),
       new_shift=finite_floats, perm_seed=st.integers(0, 2**16))
def test_property_classification_order_invariant(old, new_shift, perm_seed):
    """Permuting the metric insertion order never changes any verdict."""
    names = [f"m{i}.epoch_time_s" for i in range(len(old))]
    old_m = {n: bstats.summarize(xs, bstats.SIM_S, ci_seed=0)
             for n, xs in zip(names, old)}
    new_m = {n: bstats.summarize([x + new_shift for x in xs],
                                 bstats.SIM_S, ci_seed=0)
             for n, xs in zip(names, old)}

    def doc(metrics, order):
        return {"stats": {"schema": bstats.STATS_SCHEMA,
                          "metrics": {k: metrics[k] for k in order}}}

    rng = np.random.default_rng(perm_seed)
    shuffled = list(names)
    rng.shuffle(shuffled)
    base = bstats.compare_artifacts(doc(old_m, names), doc(new_m, names))
    perm = bstats.compare_artifacts(doc(old_m, shuffled),
                                    doc(new_m, shuffled))
    assert {c.name: c.classification for c in base.comparisons} == \
        {c.name: c.classification for c in perm.comparisons}
