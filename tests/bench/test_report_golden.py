"""Golden-report regression tests for the markdown bench reports.

``tests/golden/report-compare.md`` pins the rendered comparison for a
fixed pair of artifacts (fixed samples, fixed fingerprints), so any
formatting drift in ``bench/report.py`` — cell layout, significance
markers, the ± CI rendering — shows up as a readable diff instead of a
silent change in every future PR's bench comment.

Regenerate intentionally with::

    PYTHONPATH=src python tests/bench/test_report_golden.py --regen
"""

import os
import sys

import pytest

from repro.bench import stats as bstats
from repro.bench.report import (fmt_mean_ci, format_comparison_markdown,
                                format_stats_markdown, significance_marker)

pytestmark = pytest.mark.benchstat

GOLDEN = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "golden", "report-compare.md")

#: Fixed fingerprint so the golden file is machine-independent.
_FP = {"python": "3.11.0", "implementation": "CPython", "numpy": "2.0.0",
       "platform": "Linux-test", "machine": "x86_64", "cpu_count": 8,
       "config": {"bench": "golden"}, "config_hash": "0123456789abcdef",
       "commit": "feedfacecafe", "dirty": False}


def _doc(samples_by_name):
    metrics = bstats.summarize_metrics(
        samples_by_name,
        {"epoch_time_s": bstats.SIM_S, "speedup": bstats.RATIO_UP,
         "wall_s": bstats.WALL_S, "dropped": bstats.COUNT_BAD,
         "steps": bstats.COUNT_INFO}, ci_seed=0)
    block = {"schema": bstats.STATS_SCHEMA,
             "run_plan": {"runs": 5, "warmup": 1, "seed": 0},
             "ci": {"confidence": bstats.CI_CONFIDENCE,
                    "method": "bootstrap-percentile",
                    "resamples": bstats.CI_RESAMPLES},
             "fingerprint": dict(_FP),
             "metrics": metrics}
    return {"ok": True, "stats": block}


def _report_text() -> str:
    old = _doc({
        "sys.epoch_time_s": [2.00, 2.00, 2.00, 2.00, 2.00],
        "sys.speedup": [6.0, 6.2, 5.8, 6.1, 5.9],
        "sys.wall_s": [0.50, 0.52, 0.48, 0.51, 0.49],
        "sys.dropped": [0.0] * 5,
        "sys.steps": [1200.0] * 5,
    })
    new = _doc({
        "sys.epoch_time_s": [2.60, 2.60, 2.60, 2.60, 2.60],  # regressed
        "sys.speedup": [7.8, 8.0, 7.6, 7.9, 7.7],            # improved
        "sys.wall_s": [0.51, 0.53, 0.49, 0.52, 0.50],        # unchanged
        "sys.dropped": [0.0] * 5,                            # unchanged
        "sys.steps": [1500.0] * 5,                           # info only
        "sys.p99_s": [0.01] * 5,                             # added
    })
    report = bstats.compare_artifacts(old, new)
    return "\n".join([
        format_stats_markdown(new["stats"]), "",
        format_comparison_markdown(report), "",
    ])


def test_report_matches_golden():
    with open(GOLDEN) as fh:
        want = fh.read()
    assert _report_text() == want, (
        "markdown report drifted from tests/golden/report-compare.md; "
        "if intentional, regenerate with "
        "`PYTHONPATH=src python tests/bench/test_report_golden.py --regen` "
        "and commit the diff")


def test_fmt_mean_ci_shapes():
    # Symmetric CI -> ± half-width; degenerate -> bare mean;
    # lopsided -> explicit interval; missing -> bare mean.
    assert fmt_mean_ci(2.0, 1.9, 2.1) == "2.000 ± 0.10"
    assert fmt_mean_ci(2.0, 2.0, 2.0) == "2.000"
    assert fmt_mean_ci(2.0, 1.99, 3.0) == "2.000 [1.990, 3.000]"
    assert fmt_mean_ci(2.0, float("nan"), float("nan")) == "2.000"


def test_significance_markers():
    assert significance_marker(0.001) == "**"
    assert significance_marker(0.03) == "*"
    assert significance_marker(0.5) == "~"
    assert significance_marker(float("nan")) == "·"


if __name__ == "__main__":
    if "--regen" in sys.argv:
        with open(GOLDEN, "w") as fh:
            fh.write(_report_text())
        print(f"wrote {GOLDEN}")
