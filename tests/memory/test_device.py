"""Tests for device memory and the PCIe transfer engine."""

import pytest

from repro.errors import OutOfMemoryError
from repro.memory import DeviceMemory, PCIeLink
from repro.simcore import AllOf, Simulator


def test_device_memory_allocate_free():
    dev = DeviceMemory(capacity=1000)
    dev.allocate(400, tag="featbuf")
    assert dev.available == 600
    dev.free(400, tag="featbuf")
    assert dev.available == 1000


def test_device_memory_oom():
    dev = DeviceMemory(capacity=100, name="gpu1")
    with pytest.raises(OutOfMemoryError) as exc:
        dev.allocate(200)
    assert "gpu1" in str(exc.value)


def test_device_free_more_than_tag_holds_raises():
    dev = DeviceMemory(capacity=100)
    dev.allocate(50, tag="a")
    with pytest.raises(ValueError):
        dev.free(60, tag="a")


def test_device_peak_tracking():
    dev = DeviceMemory(capacity=100)
    dev.allocate(80)
    dev.free(80)
    assert dev.peak_used == 80


def test_pcie_single_transfer_time():
    sim = Simulator()
    link = PCIeLink(sim, bandwidth=1e9, latency=1e-3)

    def proc(sim):
        nbytes = yield link.copy_async(1_000_000)
        return (sim.now, nbytes)

    now, nbytes = sim.run_process(proc(sim))
    assert nbytes == 1_000_000
    assert now == pytest.approx(1e-3 + 1e-3)  # latency + 1MB/1GBps


def test_pcie_transfers_queue_fifo():
    sim = Simulator()
    link = PCIeLink(sim, bandwidth=1e9, latency=0.0)
    done = []

    def proc(sim):
        evs = [link.copy_async(1_000_000) for _ in range(3)]
        yield AllOf(sim, evs)
        return sim.now

    # Three 1ms transfers serialise on the link: total 3ms.
    assert sim.run_process(proc(sim)) == pytest.approx(3e-3)
    assert link.bytes_moved == 3_000_000
    assert link.transfers == 3


def test_pcie_overlap_with_other_work():
    sim = Simulator()
    link = PCIeLink(sim, bandwidth=1e9, latency=0.0)
    marks = {}

    def proc(sim):
        ev = link.copy_async(2_000_000)  # 2 ms
        yield sim.timeout(0.5e-3)        # overlapping CPU work
        marks["cpu_done"] = sim.now
        yield ev
        marks["copy_done"] = sim.now

    sim.run_process(proc(sim))
    assert marks["cpu_done"] == pytest.approx(0.5e-3)
    assert marks["copy_done"] == pytest.approx(2e-3)


def test_pcie_queue_delay_visibility():
    sim = Simulator()
    link = PCIeLink(sim, bandwidth=1e9, latency=0.0)
    link.copy_async(5_000_000)
    assert link.queue_delay == pytest.approx(5e-3)


def test_pcie_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        PCIeLink(sim, bandwidth=0)
    link = PCIeLink(sim)
    with pytest.raises(ValueError):
        link.copy_async(-1)
