"""Tests for the host-memory accountant."""

import pytest

from repro.errors import DoubleFreeError, OutOfMemoryError
from repro.memory import HostMemory, TagUsage


def test_allocate_and_free_roundtrip():
    mem = HostMemory(capacity=1000)
    a = mem.allocate(300, tag="staging")
    assert mem.pinned_bytes == 300
    assert mem.available == 700
    mem.free(a)
    assert mem.pinned_bytes == 0


def test_oom_on_overcommit():
    mem = HostMemory(capacity=1000)
    mem.allocate(800)
    with pytest.raises(OutOfMemoryError) as exc:
        mem.allocate(300)
    assert exc.value.requested == 300
    assert exc.value.available == 200


def test_cache_budget_is_free_memory():
    mem = HostMemory(capacity=1000, reserve=100)
    assert mem.cache_budget() == 900
    mem.allocate(400)
    assert mem.cache_budget() == 500


def test_reserve_reduces_available():
    mem = HostMemory(capacity=1000, reserve=200)
    assert mem.available == 800
    with pytest.raises(OutOfMemoryError):
        mem.allocate(900)


def test_double_free_raises():
    mem = HostMemory(capacity=100)
    a = mem.allocate(50, tag="staging")
    mem.free(a)
    with pytest.raises(DoubleFreeError) as exc:
        mem.free(a)
    assert exc.value.alloc_id == a.alloc_id
    assert exc.value.tag == "staging"
    assert exc.value.nbytes == 50
    assert mem.pinned_bytes == 0  # accounting untouched by the bad free


def test_pinned_by_tag_breakdown():
    mem = HostMemory(capacity=1000)
    mem.allocate(100, tag="staging")
    mem.allocate(200, tag="staging")
    b = mem.allocate(300, tag="cache")
    assert mem.pinned_by_tag() == {"staging": TagUsage(300, 2),
                                   "cache": TagUsage(300, 1)}
    mem.free(b)
    assert mem.pinned_by_tag() == {"staging": TagUsage(300, 2)}


def test_usage_by_tag_accounting():
    mem = HostMemory(capacity=1000)
    mem.allocate(100, tag="staging")
    mem.allocate(200, tag="staging")
    b = mem.allocate(300, tag="topo")
    assert mem.usage_by_tag() == {"staging": 300, "topo": 300}
    mem.free(b)
    assert mem.usage_by_tag() == {"staging": 300}


def test_resize_grows_and_shrinks():
    mem = HostMemory(capacity=1000)
    a = mem.allocate(100, tag="buf")
    mem.resize(a, 500)
    assert mem.pinned_bytes == 500
    mem.resize(a, 50)
    assert mem.pinned_bytes == 50
    with pytest.raises(OutOfMemoryError):
        mem.resize(a, 2000)


def test_pressure_listener_fires_on_change():
    mem = HostMemory(capacity=1000)
    calls = []
    mem.add_pressure_listener(lambda: calls.append(mem.cache_budget()))
    a = mem.allocate(600)
    mem.free(a)
    assert calls == [400, 1000]


def test_peak_pinned_tracks_high_water_mark():
    mem = HostMemory(capacity=1000)
    a = mem.allocate(700)
    mem.free(a)
    mem.allocate(100)
    assert mem.peak_pinned == 700


def test_validation_errors():
    with pytest.raises(ValueError):
        HostMemory(capacity=0)
    with pytest.raises(ValueError):
        HostMemory(capacity=100, reserve=100)
    mem = HostMemory(capacity=100)
    with pytest.raises(ValueError):
        mem.allocate(-1)
