"""Degenerate-equivalence pin: a 1-shard / 1-replica uniform cluster is
the single-machine serving stack.

Two facets, both pinned:

* the degenerate cluster consumes the identical request stream a
  single-machine :mod:`repro.serve` run sees (same streams, same order,
  bit-for-bit), and
* under a generous configuration it reaches the same terminal verdict —
  every offered request completes, nothing shed, lost, or late.
"""

import numpy as np
import pytest

from repro.bench.runner import get_dataset
from repro.cluster import ClusterScenario, run_cluster_scenario
from repro.serve import build_requests, request_trace_digest
from repro.serve.scenario import ServeScenario, run_serve_scenario
from repro.serve.workload import build_request_arrays

pytestmark = pytest.mark.cluster

#: The degenerate cluster: one shard holds everything, no replicas to
#: hedge onto, uniform popularity on the serve pool (the test split).
DEGENERATE = ClusterScenario(
    name="degenerate", dataset="tiny", kind="poisson", rate=200.0,
    num_requests=60, popularity="uniform", rate_shape="flat",
    pool="test", slo=10.0, num_shards=1, replication=1, hedge=False,
    admit_capacity=4096, seed=0)

#: The single-machine twin (the serve plane's own default workload).
SERVE_TWIN = ServeScenario(
    name="degenerate-serve", dataset="tiny", kind="poisson", rate=200.0,
    num_requests=60, slo=10.0, seed=0)


def test_request_stream_bit_identical_to_serve():
    """The degenerate cluster's workload draws the exact request stream
    the single-machine server would see: same arrivals, same seeds."""
    dataset = get_dataset("tiny", seed=0)
    pool = dataset.test_idx
    arrivals, seeds = build_request_arrays(DEGENERATE.workload_spec(), pool)
    serve_reqs = build_requests(SERVE_TWIN.workload_spec(), pool,
                                slo=SERVE_TWIN.slo)
    assert np.array_equal(arrivals,
                          np.array([r.arrival for r in serve_reqs]))
    assert np.array_equal(seeds.ravel(),
                          np.concatenate([r.seeds for r in serve_reqs]))
    # And the stream is stable across builds (digest form).
    again = build_requests(SERVE_TWIN.workload_spec(), pool,
                           slo=SERVE_TWIN.slo)
    assert request_trace_digest(serve_reqs) == request_trace_digest(again)


def test_degenerate_cluster_matches_single_machine_verdict():
    """Generous knobs: both planes complete every request cleanly."""
    crun = run_cluster_scenario(DEGENERATE)
    srun = run_serve_scenario(SERVE_TWIN)
    assert crun.ok and crun.findings == []
    assert srun.ok and srun.findings == []
    cs, ss = crun.stats, srun.stats
    cs.check_accounting()
    assert cs.offered == ss.offered == 60
    assert cs.completed == ss.completed == 60
    assert cs.shed == cs.timed_out == cs.failed == 0
    assert cs.slo_attainment == 1.0
    assert cs.num_shards == 1
    assert cs.mirrors == 0          # nowhere to hedge to
    assert cs.redirects == 0        # nowhere to redirect to


def test_degenerate_cluster_is_deterministic():
    a = run_cluster_scenario(DEGENERATE)
    b = run_cluster_scenario(DEGENERATE)
    assert a.ok and b.ok
    assert a.digest == b.digest
