"""Cluster scenarios and plans: JSON round-trips, oracle gating, CLI."""

import json
import os

import pytest

from repro.cluster import ClusterScenario
from repro.faults import SHARD_KINDS, FaultPlan, load_plan
from repro.oracle.oracles import ClusterLoadP99Monotone
from repro.oracle.scenario import Scenario, ScenarioRunner

pytestmark = pytest.mark.cluster

EXAMPLE_PLAN = os.path.join(os.path.dirname(__file__), os.pardir,
                            os.pardir, "examples",
                            "cluster_chaos_plan.json")


def test_scenario_json_round_trip():
    sc = ClusterScenario(name="rt", rate=1234.5, num_requests=77,
                         num_shards=6, replication=3, partition="degree",
                         popularity="zipf", zipf_alpha=1.7,
                         rate_shape="flash", fault_plan="shard-chaos",
                         seed=42)
    d = sc.to_dict()
    assert ClusterScenario.from_dict(json.loads(json.dumps(d))) == sc


def test_scenario_validation():
    with pytest.raises(ValueError):
        ClusterScenario(name="bad", fault_plan="meteor-strike")
    with pytest.raises(ValueError):
        ClusterScenario(name="bad", pool="train")
    with pytest.raises(ValueError):
        ClusterScenario(name="bad", fault_plan="shard-chaos",
                        fault_plan_file="plan.json")


def test_example_cluster_plan_round_trips():
    """The committed example plan loads, targets only shard faults, and
    survives a JSON round-trip unchanged."""
    plan = load_plan(EXAMPLE_PLAN)
    assert plan.has_shard_faults
    assert all(s.kind in SHARD_KINDS for s in plan.specs)
    assert {s.kind for s in plan.specs} == set(SHARD_KINDS)
    again = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
    assert again == plan


def test_example_plan_drives_a_cluster_run():
    from repro.cluster import run_cluster_scenario
    sc = ClusterScenario(name="example-plan", rate=1200.0,
                         num_requests=250, slo=0.2,
                         fault_plan_file=EXAMPLE_PLAN, seed=7)
    run = run_cluster_scenario(sc)
    assert run.ok and run.findings == []
    run.stats.check_accounting()
    assert run.stats.faults.get("injected_shard_down", 0) >= 1
    assert run.stats.failed == 0


def test_cluster_oracle_gated_off_under_chaos():
    """ClusterLoadP99Monotone only applies to fault-free scenarios —
    chaos windows are wall-clock anchored, so the load-halving
    metamorphic law legitimately breaks under them."""
    oracle = ClusterLoadP99Monotone()
    clean = ScenarioRunner(Scenario(name="clean", dataset="tiny"))
    chaotic = ScenarioRunner(Scenario(name="chaotic", dataset="tiny",
                                      fault_plan="chaos"))
    assert oracle.applicable(clean)
    assert not oracle.applicable(chaotic)


def test_cluster_oracle_in_catalogue():
    from repro.oracle import ORACLES
    assert any(o.name == "cluster-load-p99-monotone" for o in ORACLES)


def test_cli_lists_cluster_and_runs(capsys):
    from repro.cli import main
    with pytest.raises(SystemExit):
        main(["--help"])
    assert "cluster" in capsys.readouterr().out
    rc = main(["cluster", "--requests", "80", "--rate", "400",
               "--slo", "0.5", "--seed", "3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "SLO attainment" in out


def test_cli_cluster_faults_and_preset_are_exclusive(capsys):
    from repro.cli import main
    rc = main(["cluster", "--shard-chaos", "--faults", EXAMPLE_PLAN])
    assert rc != 0
