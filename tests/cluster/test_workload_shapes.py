"""Traffic-shape generators: Zipf popularity, diurnal/flash arrival
shapes — bit-determinism and the statistical properties the cluster
bench leans on."""

import hashlib

import numpy as np
import pytest

from repro.serve.config import ConfigError, WorkloadSpec
from repro.serve.workload import (build_request_arrays,
                                  popularity_ranked_pool,
                                  popularity_weights)
from repro.simcore import RandomStreams

pytestmark = pytest.mark.cluster

POOL = np.arange(500, dtype=np.int64)


def _digest(spec):
    arrivals, seeds = build_request_arrays(spec, POOL)
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(arrivals).tobytes())
    h.update(np.ascontiguousarray(seeds, dtype=np.int64).tobytes())
    return h.hexdigest()


@pytest.mark.parametrize("shape_kw", [
    {"popularity": "zipf", "zipf_alpha": 1.3},
    {"rate_shape": "diurnal", "diurnal_period": 0.5,
     "diurnal_amplitude": 0.7},
    {"rate_shape": "flash", "flash_start": 0.1, "flash_duration": 0.1,
     "flash_multiplier": 6.0},
    {"popularity": "zipf", "zipf_alpha": 2.0, "rate_shape": "diurnal"},
])
def test_shaped_generators_bit_identical_same_seed(shape_kw):
    spec = WorkloadSpec(kind="poisson", rate=800.0, num_requests=300,
                        seed=7, **shape_kw)
    assert _digest(spec) == _digest(spec)
    assert _digest(spec) != _digest(spec.with_(seed=8))


def test_shaped_arrivals_sorted_positive_and_counted():
    spec = WorkloadSpec(kind="poisson", rate=1000.0, num_requests=400,
                        rate_shape="diurnal", seed=3)
    arrivals, seeds = build_request_arrays(spec, POOL)
    assert len(arrivals) == len(seeds) == 400
    assert np.all(arrivals > 0)
    assert np.all(np.diff(arrivals) >= 0)


def test_flash_crowd_concentrates_arrivals():
    """Arrival density inside the flash window beats the baseline by a
    factor tracking flash_multiplier."""
    spec = WorkloadSpec(kind="poisson", rate=1000.0, num_requests=2000,
                        rate_shape="flash", flash_start=0.5,
                        flash_duration=0.25, flash_multiplier=8.0, seed=5)
    arrivals, _ = build_request_arrays(spec, POOL)
    lo, hi = 0.5, 0.75
    inside = np.sum((arrivals >= lo) & (arrivals < hi))
    before = np.sum(arrivals < lo)
    inside_rate = inside / (hi - lo)
    before_rate = before / lo
    assert inside_rate > 3.0 * before_rate


def test_zipf_concentrates_on_leading_ranks():
    """Under strong Zipf skew the hottest rank dominates the draws and
    the draws follow the ranked pool, not node-id order."""
    spec = WorkloadSpec(kind="poisson", rate=500.0, num_requests=3000,
                        popularity="zipf", zipf_alpha=1.5, seed=2)
    ranked = popularity_ranked_pool(spec, POOL, RandomStreams(spec.seed))
    _, seeds = build_request_arrays(spec, POOL)
    counts = np.bincount(seeds.ravel(), minlength=len(POOL))
    hottest = ranked[0]
    assert counts[hottest] == counts.max()
    # Top-10 ranks soak up far more than their uniform share (2%).
    top10 = counts[ranked[:10]].sum() / counts.sum()
    assert top10 > 0.4


def test_popularity_weights_normalised_and_monotone():
    spec = WorkloadSpec(kind="poisson", rate=100.0, num_requests=10,
                        popularity="zipf", zipf_alpha=1.1)
    w = popularity_weights(spec, 50)
    assert w.sum() == pytest.approx(1.0)
    assert np.all(np.diff(w) < 0)
    uniform = WorkloadSpec(kind="poisson", rate=100.0, num_requests=10)
    assert popularity_weights(uniform, 50) is None


def test_uniform_ranked_pool_is_identity():
    spec = WorkloadSpec(kind="poisson", rate=100.0, num_requests=10)
    ranked = popularity_ranked_pool(spec, POOL, RandomStreams(0))
    assert np.array_equal(ranked, POOL)


def test_ranked_pool_passthrough_matches_internal_draw():
    """The cluster passes its precomputed rank order back in; that must
    reproduce the internal draw bit-for-bit (no double permutation)."""
    spec = WorkloadSpec(kind="poisson", rate=500.0, num_requests=200,
                        popularity="zipf", zipf_alpha=1.4, seed=9)
    ranked = popularity_ranked_pool(spec, POOL, RandomStreams(spec.seed))
    a1, s1 = build_request_arrays(spec, POOL)
    a2, s2 = build_request_arrays(spec, POOL, ranked_pool=ranked)
    assert np.array_equal(a1, a2)
    assert np.array_equal(s1, s2)


def test_shape_validation():
    with pytest.raises(ConfigError):
        WorkloadSpec(kind="poisson", rate=1.0, popularity="bimodal")
    with pytest.raises(ConfigError):
        WorkloadSpec(kind="poisson", rate=1.0, popularity="zipf",
                     zipf_alpha=0.0)
    with pytest.raises(ConfigError):
        WorkloadSpec(kind="poisson", rate=1.0, rate_shape="sawtooth")
    with pytest.raises(ConfigError):
        WorkloadSpec(kind="poisson", rate=1.0, rate_shape="diurnal",
                     diurnal_amplitude=1.5)
    with pytest.raises(ConfigError):
        WorkloadSpec(kind="poisson", rate=1.0, rate_shape="flash",
                     flash_multiplier=0.5)
    with pytest.raises(ConfigError):
        WorkloadSpec(kind="trace", num_requests=2, arrivals=(0.1, 0.2),
                     rate_shape="diurnal")
