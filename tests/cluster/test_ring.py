"""Consistent-hash ring properties: balance, minimal remap, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import HashRing, remap_fraction
from repro.errors import ConfigError

pytestmark = pytest.mark.cluster

KEYS = np.arange(20_000, dtype=np.int64)

shard_sets = st.lists(st.integers(min_value=0, max_value=10_000),
                      min_size=2, max_size=10, unique=True)


@settings(max_examples=40, deadline=None)
@given(shards=shard_sets)
def test_key_balance_within_bound(shards):
    """With 64 vnodes per shard the hottest shard's keyspace share
    stays within 1.7x of the even split, for arbitrary shard ids."""
    ring = HashRing(shards, vnodes=64)
    owners = ring.lookup(KEYS)
    _, counts = np.unique(owners, return_counts=True)
    assert set(np.unique(owners)) <= set(shards)
    assert counts.max() / len(KEYS) <= 1.7 / len(shards)


@settings(max_examples=40, deadline=None)
@given(shards=shard_sets, data=st.data())
def test_minimal_remap_on_shard_loss(shards, data):
    """Removing one shard moves ONLY the keys that shard owned; every
    other key keeps its shard (what makes shard_down failover cheap)."""
    ring = HashRing(shards, vnodes=64)
    victim = data.draw(st.sampled_from(shards))
    before = ring.lookup(KEYS)
    after = ring.without(victim).lookup(KEYS)
    moved = before != after
    assert np.all(before[moved] == victim)
    assert remap_fraction(ring, ring.without(victim), KEYS) == pytest.approx(
        float(np.mean(before == victim)))


@settings(max_examples=40, deadline=None)
@given(shards=shard_sets, new=st.integers(min_value=10_001, max_value=20_000))
def test_minimal_remap_on_shard_add(shards, new):
    """Adding a shard moves keys only TO the new shard (scale-out pulls
    ~1/(N+1) of the keyspace, disturbing nothing else)."""
    ring = HashRing(shards, vnodes=64)
    grown = ring.with_shard(new)
    before = ring.lookup(KEYS)
    after = grown.lookup(KEYS)
    moved = before != after
    assert np.all(after[moved] == new)
    # Round-trips: grow then shrink is the original ring's mapping.
    assert np.array_equal(grown.without(new).lookup(KEYS), before)


def test_lookup_deterministic_across_instances():
    a = HashRing(range(5), vnodes=64).lookup(KEYS)
    b = HashRing(range(5), vnodes=64).lookup(KEYS)
    assert np.array_equal(a, b)


def test_successor_chains_distinct_and_owner_first():
    ring = HashRing(range(6), vnodes=32)
    succ = ring.successors(KEYS[:2000], count=3)
    assert succ.shape == (2000, 3)
    assert np.array_equal(succ[:, 0], ring.lookup(KEYS[:2000]))
    for row in succ:
        assert len(set(row.tolist())) == 3


def test_successor_count_capped_at_ring_size():
    ring = HashRing(range(3), vnodes=16)
    succ = ring.successors(KEYS[:100], count=8)
    assert succ.shape == (100, 3)
    assert sorted(set(succ[0].tolist())) == [0, 1, 2]


def test_ring_validation():
    with pytest.raises(ConfigError):
        HashRing([])
    with pytest.raises(ConfigError):
        HashRing([1, 1])
    with pytest.raises(ConfigError):
        HashRing([1, 2], vnodes=0)
    ring = HashRing([1, 2])
    with pytest.raises(ConfigError):
        ring.without(9)
    with pytest.raises(ConfigError):
        ring.with_shard(2)
    with pytest.raises(ConfigError):
        ring.successors(KEYS[:1], count=0)
