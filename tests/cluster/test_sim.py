"""Cluster simulator end-to-end: accounting, determinism, failover."""

import pytest

from repro.cluster import ClusterScenario, run_cluster_scenario

pytestmark = pytest.mark.cluster

BASE = ClusterScenario(name="t-cluster", dataset="tiny", rate=800.0,
                       num_requests=150, slo=0.1, seed=7)


def _run(scenario):
    run = run_cluster_scenario(scenario)
    assert run.ok, run.error
    assert run.findings == []
    run.stats.check_accounting()
    return run


def test_accounting_identity_holds():
    run = _run(BASE)
    s = run.stats
    assert s.offered == 150
    assert s.offered == s.completed + s.shed + s.timed_out + s.failed
    assert s.reads_done <= s.reads_total
    assert s.parts_served == sum(s.per_shard_parts)


def test_same_seed_same_digest():
    assert _run(BASE).digest == _run(BASE).digest
    assert _run(BASE).digest != _run(BASE.with_(seed=8)).digest


def test_cluster_knobs_change_the_trace():
    base = _run(BASE).digest
    assert _run(BASE.with_(num_shards=6)).digest != base
    assert _run(BASE.with_(partition="degree")).digest != base
    assert _run(BASE.with_(hops=1)).digest != base


def test_shard_down_with_replication_loses_nothing():
    """RF >= 2 under the shard-chaos plan: the outage redirects every
    affected part to a ring successor; no admitted request is lost."""
    run = _run(BASE.with_(fault_plan="shard-chaos", num_requests=300))
    s = run.stats
    assert s.faults.get("injected_shard_down", 0) >= 1
    assert s.redirects > 0
    assert s.failed == 0
    assert s.completed + s.shed + s.timed_out == s.offered


def test_shard_down_without_replication_fails_fast():
    """RF 1: the downed shard's keys are unreachable — the affected
    requests fail (counted, not lost) instead of hanging."""
    run = _run(BASE.with_(fault_plan="shard-chaos", num_requests=300,
                          replication=1, hedge=False))
    s = run.stats
    assert s.failed > 0
    assert s.faults.get("shard_unavailable", 0) == s.failed
    assert s.redirects == 0


def test_chaos_run_is_deterministic():
    chaos = BASE.with_(fault_plan="shard-chaos", num_requests=300)
    assert _run(chaos).digest == _run(chaos).digest


def test_hedging_launches_mirrors_and_wins_some():
    run = _run(BASE.with_(hot_fraction=0.1, num_requests=300))
    s = run.stats
    assert s.mirrors > 0
    assert s.mirror_wins <= s.mirrors
    assert s.faults.get("hot_mirrors", 0) == 0  # no plan -> no ledger
    off = _run(BASE.with_(hedge=False, num_requests=300)).stats
    assert off.mirrors == 0


def test_degree_partition_balances_load():
    run = _run(BASE.with_(partition="degree", num_requests=300))
    parts = run.stats.per_shard_parts
    assert len(parts) == BASE.num_shards
    assert sum(parts) == run.stats.parts_served


def test_races_clean_under_chaos():
    run = run_cluster_scenario(
        BASE.with_(fault_plan="shard-chaos", num_requests=200), races=True)
    assert run.ok and run.findings == []
    assert run.race_report is not None
    assert run.race_report.get("races", []) == []


def test_admission_sheds_over_capacity():
    run = _run(BASE.with_(rate=50_000.0, num_requests=600,
                          admit_capacity=32, slo=10.0))
    s = run.stats
    assert s.shed > 0
    assert s.offered == s.completed + s.shed + s.timed_out + s.failed
