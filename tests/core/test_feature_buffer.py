"""Unit tests for the feature-buffer manager (Algorithm 1 semantics)."""

import numpy as np
import pytest

from repro.core.feature_buffer import FeatureBuffer
from repro.errors import SimulationError
from repro.simcore import Simulator


def make_fb(slots=8, nodes=32, dim=4):
    sim = Simulator()
    return sim, FeatureBuffer(sim, slots, nodes, dim)


def test_fresh_batch_all_needs_load():
    sim, fb = make_fb()
    cls = fb.begin_batch(np.array([1, 2, 3]))
    assert list(cls.needs_load) == [1, 2, 3]
    assert len(cls.wait_nodes) == 0
    assert cls.reused == 0
    assert np.all(cls.aliases == -1)
    assert list(fb.ref[[1, 2, 3]]) == [1, 1, 1]


def test_allocate_fill_finish_roundtrip():
    sim, fb = make_fb(dim=2)
    nodes = np.array([5, 6])
    fb.begin_batch(nodes)
    assigned, remaining = fb.allocate_slots(nodes)
    assert len(assigned) == 2 and len(remaining) == 0
    rows = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
    fb.fill(nodes, rows)
    fb.finish_load(nodes)
    assert fb.valid[5] and fb.valid[6]
    aliases = fb.resolve_aliases(nodes)
    assert np.array_equal(fb.gather(aliases), rows)
    fb.check_invariants()


def test_reuse_of_valid_referenced_node():
    sim, fb = make_fb()
    a = np.array([1, 2])
    fb.begin_batch(a)
    fb.allocate_slots(a)
    fb.finish_load(a)
    # Second batch shares node 2 while still referenced by batch 1.
    cls = fb.begin_batch(np.array([2, 3]))
    assert list(cls.needs_load) == [3]
    assert cls.reused == 1
    assert fb.ref[2] == 2
    fb.check_invariants()


def test_retired_node_reused_from_standby():
    sim, fb = make_fb()
    a = np.array([1])
    fb.begin_batch(a)
    fb.allocate_slots(a)
    fb.finish_load(a)
    fb.release(a)                    # ref 0: slot parked in standby
    slot = int(fb.slot_of[1])
    assert slot in fb.standby
    cls = fb.begin_batch(np.array([1, 9]))
    assert cls.reused == 1
    assert slot not in fb.standby    # pulled back out
    assert cls.aliases[0] == slot
    fb.check_invariants()


def test_inflight_node_goes_to_wait_list():
    sim, fb = make_fb()
    fb.begin_batch(np.array([1]))    # extractor A takes node 1 (invalid, ref 1)
    cls = fb.begin_batch(np.array([1, 2]))
    assert list(cls.wait_nodes) == [1]
    assert list(cls.needs_load) == [2]
    assert fb.ref[1] == 2


def test_ready_event_fires_on_finish():
    sim, fb = make_fb()
    fb.begin_batch(np.array([1]))
    fb.allocate_slots(np.array([1]))
    ev = fb.ready_event(1)
    assert not ev.triggered
    fb.finish_load(np.array([1]))
    assert ev.triggered
    # Already-valid node: event pre-fired.
    assert fb.ready_event(1).triggered


def test_delayed_invalidation_on_slot_reuse():
    sim, fb = make_fb(slots=1)
    fb.begin_batch(np.array([1]))
    fb.allocate_slots(np.array([1]))
    fb.finish_load(np.array([1]))
    fb.release(np.array([1]))
    assert fb.valid[1]               # still valid after release (delayed)
    fb.begin_batch(np.array([2]))
    fb.allocate_slots(np.array([2]))
    assert not fb.valid[1]           # invalidated at reuse
    assert fb.slot_of[1] == -1
    assert fb.reverse[0] == 2
    fb.check_invariants()


def test_lru_order_of_standby_reuse():
    sim, fb = make_fb(slots=2, nodes=8)
    for v in (1, 2):
        arr = np.array([v])
        fb.begin_batch(arr)
        fb.allocate_slots(arr)
        fb.finish_load(arr)
    fb.release(np.array([1]))   # slot of 1 retires first (LRU)
    fb.release(np.array([2]))
    fb.begin_batch(np.array([3]))
    fb.allocate_slots(np.array([3]))
    assert fb.slot_of[1] == -1  # node 1's slot was the LRU victim
    assert fb.valid[2]


def test_allocate_partial_when_standby_short():
    sim, fb = make_fb(slots=2, nodes=16)
    nodes = np.array([1, 2, 3])
    fb.begin_batch(nodes)
    assigned, remaining = fb.allocate_slots(nodes)
    assert len(assigned) == 2
    assert list(remaining) == [3]


def test_slot_wait_event_wakes_on_release():
    sim, fb = make_fb(slots=1, nodes=8)
    fb.begin_batch(np.array([1]))
    fb.allocate_slots(np.array([1]))
    fb.finish_load(np.array([1]))
    ev = fb.slot_wait_event()
    assert not ev.triggered
    fb.release(np.array([1]))
    assert ev.triggered


def test_release_underflow_raises():
    sim, fb = make_fb()
    with pytest.raises(SimulationError):
        fb.release(np.array([1]))


def test_fill_without_slot_raises():
    sim, fb = make_fb(dim=2)
    with pytest.raises(SimulationError):
        fb.fill(np.array([1]), np.zeros((1, 2), dtype=np.float32))


def test_finish_load_unmapped_raises():
    sim, fb = make_fb()
    with pytest.raises(SimulationError):
        fb.finish_load(np.array([1]))


def test_duplicate_nodes_in_batch_rejected():
    sim, fb = make_fb()
    with pytest.raises(ValueError):
        fb.begin_batch(np.array([1, 1]))


def test_validation_of_ctor():
    sim = Simulator()
    with pytest.raises(ValueError):
        FeatureBuffer(sim, 0, 4, 4)
    with pytest.raises(ValueError):
        FeatureBuffer(sim, 4, 0, 4)


def test_stats_counters():
    sim, fb = make_fb()
    a = np.array([1, 2])
    fb.begin_batch(a)
    fb.allocate_slots(a)
    fb.finish_load(a)
    fb.release(a)
    cls = fb.begin_batch(np.array([1, 3]))
    fb.allocate_slots(cls.needs_load)
    assert fb.stat_reused == 1
    assert fb.stat_loaded == 3
