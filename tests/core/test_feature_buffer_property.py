"""Property-based tests: feature-buffer invariants under random schedules.

Drives the buffer through arbitrary interleavings of the extractor /
releaser operations and asserts the §4.2 structural invariants after
every step — the strongest correctness evidence for Algorithm 1's data
structure.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.feature_buffer import FeatureBuffer
from repro.simcore import Simulator

NUM_NODES = 24
NUM_SLOTS = 8


class BufferDriver:
    """Replays an action trace against the buffer like extractors would."""

    def __init__(self):
        self.sim = Simulator()
        self.fb = FeatureBuffer(self.sim, NUM_SLOTS, NUM_NODES, dim=2)
        #: Batches mid-extraction: batch -> nodes pending allocation.
        self.inflight = []
        #: Batches extracted but not yet released.
        self.live = []

    def begin(self, nodes):
        nodes = np.unique(np.asarray(nodes))
        if len(nodes) == 0 or len(nodes) > NUM_SLOTS:
            return
        cls = self.fb.begin_batch(nodes)
        self.inflight.append({
            "nodes": nodes,
            "pending": cls.needs_load,
            "wait": cls.wait_nodes,
        })

    def progress(self, idx):
        if not self.inflight:
            return
        pos = idx % len(self.inflight)
        batch = self.inflight[pos]
        if len(batch["pending"]):
            assigned, remaining = self.fb.allocate_slots(batch["pending"])
            if len(assigned):
                self.fb.fill(assigned,
                             np.zeros((len(assigned), 2), dtype=np.float32))
                self.fb.finish_load(assigned)
            batch["pending"] = remaining
        if len(batch["pending"]) == 0:
            # Extraction complete only when wait-list nodes are valid too.
            if not self.fb.valid[batch["wait"]].all():
                return
            del self.inflight[pos]
            self.live.append(batch["nodes"])

    def release(self, idx):
        if not self.live:
            return
        nodes = self.live.pop(idx % len(self.live))
        self.fb.release(nodes)


action = st.one_of(
    st.tuples(st.just("begin"),
              st.lists(st.integers(0, NUM_NODES - 1), min_size=1,
                       max_size=6)),
    st.tuples(st.just("progress"), st.integers(0, 10)),
    st.tuples(st.just("release"), st.integers(0, 10)),
)


@settings(max_examples=120, deadline=None)
@given(st.lists(action, min_size=1, max_size=60))
def test_invariants_hold_under_random_schedules(trace):
    d = BufferDriver()
    for op, arg in trace:
        if op == "begin":
            d.begin(arg)
        elif op == "progress":
            d.progress(arg)
        else:
            d.release(arg)
        d.fb.check_invariants()
    # Drain everything; buffer must return to a releasable state.
    for _ in range(200):
        if not d.inflight:
            break
        d.progress(0)
    while d.live:
        d.release(0)
    d.fb.check_invariants()
    assert (d.fb.ref == 0).all() or d.inflight  # drained unless stuck
    if not d.inflight:
        # All slots eventually retire to standby or stay free.
        assert d.fb.free_slots == NUM_SLOTS or d.fb.free_slots > 0


@settings(max_examples=60, deadline=None)
@given(st.lists(st.lists(st.integers(0, NUM_NODES - 1), min_size=1,
                         max_size=5), min_size=1, max_size=20))
def test_sequential_batches_always_gather_correct_rows(batches):
    """Data-plane correctness: gathered rows match the node ids written."""
    sim = Simulator()
    fb = FeatureBuffer(sim, NUM_SLOTS, NUM_NODES, dim=1)
    for raw in batches:
        nodes = np.unique(np.asarray(raw))
        if len(nodes) > NUM_SLOTS:
            continue
        cls = fb.begin_batch(nodes)
        pending = cls.needs_load
        while len(pending):
            assigned, pending = fb.allocate_slots(pending)
            assert len(assigned) > 0, "sequential run must never stall"
            fb.fill(assigned, assigned.astype(np.float32).reshape(-1, 1))
            fb.finish_load(assigned)
        aliases = fb.resolve_aliases(nodes)
        got = fb.gather(aliases).ravel()
        np.testing.assert_array_equal(got, nodes.astype(np.float32))
        fb.release(nodes)
        fb.check_invariants()
