"""Tests for staging buffer, config validation, and sampling I/O helper."""

import numpy as np
import pytest

from repro.core import GNNDriveConfig, StagingBuffer
from repro.core.base import TrainConfig, scaled_default_fanouts, activation_bytes
from repro.core.sampling_io import frontier_pages
from repro.errors import OutOfMemoryError
from repro.graph import make_dataset
from repro.memory import HostMemory
from repro.storage.page_cache import PageCache
from repro.storage import SSDDevice, SSDSpec
from repro.simcore import Simulator


def test_staging_capacity_formula():
    host = HostMemory(1 << 22)
    s = StagingBuffer(host, num_extractors=4, max_batch_nodes=100, io_size=512)
    assert s.capacity == 4 * 100 * 512
    assert host.usage_by_tag()["staging"] == s.capacity
    s.close()
    assert host.pinned_bytes == 0


def test_staging_reserve_free_cycle():
    host = HostMemory(1 << 22)
    s = StagingBuffer(host, 2, 100, 512)
    got = s.reserve(50)
    assert got == 50 * 512
    assert s.in_use == got
    s.free(50)
    assert s.in_use == 0
    with pytest.raises(ValueError):
        s.free(1)


def test_staging_overflow_raises():
    host = HostMemory(1 << 22)
    s = StagingBuffer(host, 1, 10, 512)
    s.reserve(10)
    with pytest.raises(OutOfMemoryError):
        s.reserve(1)


def test_staging_portions_allow_borrowing():
    host = HostMemory(1 << 22)
    s = StagingBuffer(host, 2, 100, 512, num_portions=2)
    # Portion 0 overflows its half but the total still fits (borrowing).
    s.reserve(150, portion=0)
    s.reserve(50, portion=1)
    assert s.in_use == 200 * 512
    with pytest.raises(OutOfMemoryError):
        s.reserve(1, portion=1)


def test_staging_validation():
    host = HostMemory(1 << 22)
    with pytest.raises(ValueError):
        StagingBuffer(host, 0, 1, 1)
    with pytest.raises(ValueError):
        StagingBuffer(host, 1, 1, 1, num_portions=0)


def test_staging_oom_on_tiny_host():
    host = HostMemory(1024)
    with pytest.raises(OutOfMemoryError):
        StagingBuffer(host, 4, 1000, 512)


# ----------------------------------------------------------------------
def test_config_defaults_match_paper():
    cfg = GNNDriveConfig()
    assert cfg.num_samplers == 4
    assert cfg.num_extractors == 4
    assert cfg.extract_queue_depth == 6
    assert cfg.train_queue_depth == 4
    assert cfg.direct_io


@pytest.mark.parametrize("kw", [
    dict(num_samplers=0),
    dict(num_extractors=0),
    dict(num_releasers=0),
    dict(extract_queue_depth=0),
    dict(train_queue_depth=0),
    dict(device="tpu"),
    dict(feature_buffer_scale=0.5),
    dict(io_depth=0),
    dict(batch_nodes_margin=0.9),
])
def test_config_validation(kw):
    with pytest.raises(ValueError):
        GNNDriveConfig(**kw)


def test_config_with_():
    cfg = GNNDriveConfig().with_(device="cpu", io_depth=8)
    assert cfg.device == "cpu" and cfg.io_depth == 8


def test_train_config_fanouts():
    assert TrainConfig(model_kind="gat").resolved_fanouts() == (3, 3, 2)
    assert TrainConfig(model_kind="sage").resolved_fanouts() == (3, 3, 3)
    assert TrainConfig(fanouts=(2, 2)).resolved_fanouts() == (2, 2)
    assert scaled_default_fanouts("gcn") == (3, 3, 3)


def test_activation_bytes_positive_and_monotone():
    ds = make_dataset("tiny", seed=0)
    from repro.sampling import NeighborSampler
    s = NeighborSampler(ds.graph, (3, 3), np.random.default_rng(0))
    small = s.sample(ds.train_idx[:5])
    big = s.sample(ds.train_idx[:50])
    dims = [ds.dim, 64, ds.num_classes]
    assert 0 < activation_bytes(small, dims) < activation_bytes(big, dims)


# ----------------------------------------------------------------------
def test_frontier_pages_cover_adjacency_runs():
    ds = make_dataset("tiny", seed=0)
    sim = Simulator()
    host = HostMemory(1 << 24)
    dev = SSDDevice(sim, SSDSpec(1e-5, 1e8, 4))
    cache = PageCache(sim, host, dev)
    nodes = ds.train_idx[:20]
    pages = frontier_pages(cache, ds.graph, nodes)
    # Every node's span must be covered.
    spans = ds.graph.touched_index_bytes(nodes)
    for start, end in spans:
        if end > start:
            assert start // 4096 in pages
            assert (end - 1) // 4096 in pages
    # Degree-0 frontier -> no pages.
    iso = np.array([int(np.argmin(ds.graph.in_degree()))])
    if ds.graph.in_degree(iso)[0] == 0:
        assert len(frontier_pages(cache, ds.graph, iso)) == 0
    assert len(frontier_pages(cache, ds.graph, np.array([], dtype=np.int64))) == 0
