"""Integration tests for the GNNDrive driver."""

import numpy as np
import pytest

from repro.core import GNNDrive, GNNDriveConfig, MultiGPUGNNDrive
from repro.core.base import TrainConfig
from repro.errors import OutOfMemoryError, OutOfTimeError
from repro.graph import make_dataset
from repro.machine import Machine, MachineSpec


@pytest.fixture(scope="module")
def tiny_ds():
    return make_dataset("tiny", seed=0)


def build(tiny_ds, device="gpu", host_gb=32, batch_size=20, **cfg_kw):
    machine = Machine(MachineSpec.paper_scaled(host_gb=host_gb))
    sysm = GNNDrive(machine, tiny_ds,
                    TrainConfig(batch_size=batch_size),
                    GNNDriveConfig(device=device, **cfg_kw))
    return machine, sysm


def fresh_ds():
    return make_dataset("tiny", seed=0)


def test_epoch_runs_and_learns(tiny_ds):
    machine, sysm = build(fresh_ds())
    stats = sysm.run_epochs(3, eval_every=1)
    assert len(stats) == 3
    assert stats[-1].val_acc > stats[0].loss * 0  # defined
    assert stats[-1].loss < stats[0].loss
    assert all(s.epoch_time > 0 for s in stats)
    assert stats[0].num_batches == sysm.plan.num_batches
    sysm.shutdown()


def test_gpu_time_charged_on_gpu(tiny_ds):
    machine, sysm = build(fresh_ds(), device="gpu")
    sysm.run_epochs(1)
    assert machine.gpu_busy[0].busy_time() > 0
    sysm.shutdown()


def test_cpu_variant_runs_without_gpu_time(tiny_ds):
    machine, sysm = build(fresh_ds(), device="cpu")
    sysm.run_epochs(1)
    assert machine.gpu_busy[0].busy_time() == 0
    assert machine.gpus[0].used == 0
    sysm.shutdown()


def test_cpu_variant_slower_training_stage(tiny_ds):
    _, gpu_sys = build(fresh_ds(), device="gpu")
    gpu_stats = gpu_sys.run_epochs(2)
    gpu_sys.shutdown()
    _, cpu_sys = build(fresh_ds(), device="cpu")
    cpu_stats = cpu_sys.run_epochs(2)
    cpu_sys.shutdown()
    assert cpu_stats[1].stages.train > gpu_stats[1].stages.train


def test_feature_buffer_reuse_grows_across_epochs(tiny_ds):
    # Tiny graph fits the buffer: epoch 2 should mostly reuse.
    _, sysm = build(fresh_ds())
    stats = sysm.run_epochs(2)
    assert stats[1].reuse_ratio > stats[0].reuse_ratio
    sysm.shutdown()


def test_bytes_read_scale_with_loads(tiny_ds):
    _, sysm = build(fresh_ds())
    stats = sysm.run_epochs(1)
    expected_min = stats[0].loaded_nodes * sysm.io_size
    assert stats[0].bytes_read >= expected_min
    sysm.shutdown()


def test_out_of_time_raises(tiny_ds):
    _, sysm = build(fresh_ds())
    with pytest.raises(OutOfTimeError):
        sysm.run_epochs(100, time_budget=1e-6)


def test_target_accuracy_stops_early(tiny_ds):
    _, sysm = build(fresh_ds())
    stats = sysm.run_epochs(50, target_accuracy=0.5, eval_every=1)
    assert len(stats) < 50
    assert stats[-1].val_acc >= 0.5
    sysm.shutdown()


def test_oom_when_feature_buffer_cannot_fit():
    ds = fresh_ds()
    machine = Machine(MachineSpec.paper_scaled(host_gb=32,
                                               gpu_capacity=1 << 16))
    with pytest.raises(OutOfMemoryError):
        GNNDrive(machine, ds, TrainConfig(batch_size=20),
                 GNNDriveConfig(device="gpu"))


def test_train_queue_depth_adapts_to_device_memory():
    ds = fresh_ds()
    probe_machine = Machine(MachineSpec.paper_scaled(host_gb=32))
    probe = GNNDrive(probe_machine, ds, TrainConfig(batch_size=20),
                     GNNDriveConfig())
    rec = ds.features.record_nbytes
    # Device memory just big enough for the deadlock-free minimum
    # ((Ne+1+1) batches of slots) plus model state and activations.
    needed_min = (probe.num_extractors + 2) * probe.max_batch_nodes
    tight = int(needed_min * rec + probe.model_state_bytes()
                + probe._activation_reserve() + rec)
    machine = Machine(MachineSpec.paper_scaled(host_gb=32,
                                               gpu_capacity=tight))
    sysm = GNNDrive(machine, fresh_ds(), TrainConfig(batch_size=20),
                    GNNDriveConfig())
    assert sysm.train_queue_depth <= probe.train_queue_depth
    assert sysm.num_feature_slots <= probe.num_feature_slots
    # The tight system still trains correctly.
    stats = sysm.run_epochs(1)
    assert stats[0].num_batches > 0
    sysm.shutdown()


def test_reordering_does_not_change_convergence(tiny_ds):
    """Fig. 14's claim: reordering leaves accuracy unaffected —
    GNNDrive with many samplers converges like batch-sequential."""
    _, multi = build(fresh_ds(), num_samplers=4, num_extractors=4)
    multi_stats = multi.run_epochs(4, eval_every=4)
    multi.shutdown()
    _, single = build(fresh_ds(), num_samplers=1, num_extractors=1)
    single_stats = single.run_epochs(4, eval_every=4)
    single.shutdown()
    assert abs(multi_stats[-1].val_acc - single_stats[-1].val_acc) < 0.25


def test_stage_times_overlap(tiny_ds):
    """Pipelining: summed stage busy time exceeds wall-clock epoch time
    once extraction overlaps training."""
    _, sysm = build(fresh_ds())
    stats = sysm.run_epochs(1)
    s = stats[0]
    assert s.stages.extract > 0 and s.stages.sample > 0
    sysm.shutdown()


def test_multigpu_two_workers_faster_training_stage(tiny_ds):
    ds = fresh_ds()
    machine = Machine(MachineSpec.paper_scaled(host_gb=256, num_gpus=2))
    sysm = MultiGPUGNNDrive(machine, ds, TrainConfig(batch_size=20),
                            GNNDriveConfig(), num_workers=2)
    stats = sysm.run_epochs(1)
    assert stats[0].num_batches >= 2
    sysm.shutdown()


def test_multigpu_validation(tiny_ds):
    machine = Machine(MachineSpec.paper_scaled(host_gb=256, num_gpus=1))
    with pytest.raises(ValueError):
        MultiGPUGNNDrive(machine, fresh_ds(), TrainConfig(batch_size=20),
                         GNNDriveConfig(), num_workers=2)


def test_multigpu_replicas_stay_synchronised(tiny_ds):
    ds = fresh_ds()
    machine = Machine(MachineSpec.paper_scaled(host_gb=256, num_gpus=2))
    sysm = MultiGPUGNNDrive(machine, ds, TrainConfig(batch_size=20),
                            GNNDriveConfig(), num_workers=2)
    sysm.run_epochs(1)
    p0 = sysm.workers[0].model.state_dict()
    p1 = sysm.workers[1].model.state_dict()
    for k in p0:
        np.testing.assert_allclose(p0[k], p1[k], rtol=1e-5,
                                   err_msg=f"replica divergence in {k}")
    sysm.shutdown()


def test_buffered_extraction_pollutes_page_cache(tiny_ds):
    """§4.4: buffered feature I/O consumes the OS page cache; direct
    I/O leaves it to the topology."""
    _, direct = build(fresh_ds(), direct_io=True)
    direct.run_epochs(1)
    m_d = direct.machine
    feat_pages_direct = sum(
        1 for (name, _) in m_d.page_cache.resident_keys()
        if name.endswith("features"))
    direct.shutdown()

    _, buffered = build(fresh_ds(), direct_io=False)
    buffered.run_epochs(1)
    m_b = buffered.machine
    feat_pages_buffered = sum(
        1 for (name, _) in m_b.page_cache.resident_keys()
        if name.endswith("features"))
    buffered.shutdown()

    assert feat_pages_direct == 0
    assert feat_pages_buffered > 0


def test_buffered_extraction_reuses_cached_pages(tiny_ds):
    """Second epoch under buffered I/O hits the page cache (fewer SSD
    reads) when memory is plentiful."""
    _, sysm = build(fresh_ds(), host_gb=512, direct_io=False)
    stats = sysm.run_epochs(2)
    # tiny's features fit: epoch 2 loads mostly from cache or reuses
    # the feature buffer, so SSD traffic collapses.
    assert stats[1].bytes_read < stats[0].bytes_read
    sysm.shutdown()


def test_model_kwargs_reach_the_factory(tiny_ds):
    machine = Machine(MachineSpec.paper_scaled(host_gb=32))
    sysm = GNNDrive(machine, fresh_ds(),
                    TrainConfig(batch_size=20, model_kind="sage",
                                model_kwargs=(("aggr", "max"),)),
                    GNNDriveConfig())
    assert sysm.model.aggr == "max"
    stats = sysm.run_epochs(1)
    assert stats[0].num_batches > 0
    sysm.shutdown()
