"""Unit tests for gradient synchronisation and dataset views."""

import numpy as np
import pytest

from repro.core.multigpu import GradientSyncGroup, _dataset_view
from repro.graph import make_dataset
from repro.models import make_model
from repro.simcore import Simulator
from repro.tensor import Tensor, matmul


def make_models(n, seed=0):
    return [make_model("sage", 8, 4, 3, num_layers=1, seed=seed)
            for _ in range(n)]


def backward_once(model, x):
    out = model(Tensor(x), _one_layer_subgraph())
    out.backward(np.ones_like(out.data))


def _one_layer_subgraph():
    from repro.sampling import LayerAdj, SampledSubgraph
    seeds = np.array([0, 1])
    return SampledSubgraph(
        seeds=seeds, all_nodes=np.array([0, 1, 2]),
        layers=[LayerAdj(np.array([2, 2]), np.array([0, 1]), 3, 2)],
        hop_frontiers=[seeds])


def test_allreduce_time_formula():
    sim = Simulator()
    g = GradientSyncGroup(sim, num_workers=4, model_bytes=8_000_000,
                          link_bandwidth=8e9, latency=0.0)
    expected = 2 * 3 / 4 * 8_000_000 / 8e9
    assert g.allreduce_time() == pytest.approx(expected)
    g1 = GradientSyncGroup(sim, 1, 8_000_000)
    assert g1.allreduce_time() == 0.0


def test_single_worker_sync_is_noop():
    sim = Simulator()
    g = GradientSyncGroup(sim, 1, 1000)
    model = make_models(1)[0]

    def proc(sim):
        yield from g.sync(0, model)
        return sim.now
        yield  # pragma: no cover

    # Generator with no yields consumed via run: returns immediately.
    gen = g.sync(0, model)
    assert list(gen) == []


def test_barrier_averages_gradients_across_replicas():
    sim = Simulator()
    g = GradientSyncGroup(sim, 2, 1000, latency=0.0)
    m0, m1 = make_models(2)
    rng = np.random.default_rng(0)
    x0 = rng.standard_normal((3, 8)).astype(np.float32)
    x1 = rng.standard_normal((3, 8)).astype(np.float32)
    backward_once(m0, x0)
    backward_once(m1, x1)
    grads_before = [
        [p.grad.copy() for p in m.parameters()] for m in (m0, m1)
    ]

    def worker(sim, wid, model):
        yield from g.sync(wid, model)

    sim.drain([sim.process(worker(sim, 0, m0)),
               sim.process(worker(sim, 1, m1))])
    for i, (p0, p1) in enumerate(zip(m0.parameters(), m1.parameters())):
        expected = (grads_before[0][i] + grads_before[1][i]) / 2
        np.testing.assert_allclose(p0.grad, expected, rtol=1e-5)
        np.testing.assert_allclose(p1.grad, expected, rtol=1e-5)
    assert g.syncs == 1


def test_barrier_blocks_until_all_arrive():
    sim = Simulator()
    g = GradientSyncGroup(sim, 2, 1000, latency=0.0)
    m0, m1 = make_models(2)
    backward_once(m0, np.ones((3, 8), dtype=np.float32))
    backward_once(m1, np.ones((3, 8), dtype=np.float32))
    times = {}

    def early(sim):
        yield from g.sync(0, m0)
        times["early"] = sim.now

    def late(sim):
        yield sim.timeout(5.0)
        yield from g.sync(1, m1)
        times["late"] = sim.now

    sim.drain([sim.process(early(sim)), sim.process(late(sim))])
    assert times["early"] >= 5.0  # waited for the straggler


def test_double_arrival_rejected():
    sim = Simulator()
    g = GradientSyncGroup(sim, 2, 1000)
    m = make_models(1)[0]
    gen = g.sync(0, m)
    next(gen)  # parked at barrier
    with pytest.raises(ValueError, match="double-arrived"):
        list(g.sync(0, m))


def test_sync_group_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        GradientSyncGroup(sim, 0, 1000)


def test_dataset_view_shares_everything_but_split():
    ds = make_dataset("tiny", seed=0)
    from repro.storage import FileCatalog
    ds.mount(FileCatalog())
    subset = ds.train_idx[:10]
    view = _dataset_view(ds, subset)
    assert view.graph is ds.graph
    assert view.features is ds.features
    assert view.topo_handle is ds.topo_handle
    assert np.array_equal(view.train_idx, subset)
    assert np.array_equal(view.val_idx, ds.val_idx)
