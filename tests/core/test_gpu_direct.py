"""Tests for the GPUDirect Storage extension (§4.4 future work)."""

import pytest

from repro.core import GNNDrive, GNNDriveConfig
from repro.core.base import TrainConfig
from repro.graph import make_dataset
from repro.machine import Machine, MachineSpec


def build(gpu_direct, dim=None):
    ds = make_dataset("tiny", seed=0, dim=dim)
    m = Machine(MachineSpec.paper_scaled(host_gb=32))
    s = GNNDrive(m, ds, TrainConfig(batch_size=20),
                 GNNDriveConfig(device="gpu", gpu_direct=gpu_direct))
    return m, s


def test_gds_requires_gpu_device():
    with pytest.raises(ValueError, match="gpu_direct"):
        GNNDriveConfig(device="cpu", gpu_direct=True)


def test_gds_eliminates_staging_buffer():
    m_std, s_std = build(False)
    assert "staging" in m_std.host.usage_by_tag()
    m_gds, s_gds = build(True)
    assert "staging" not in m_gds.host.usage_by_tag()
    assert s_gds.staging is None


def test_gds_uses_4k_access_granularity():
    _, s = build(True)          # tiny: 32-dim, 128 B records
    assert s.io_size == 4096
    _, s_std = build(False)
    assert s_std.io_size == 512  # sector-rounded


def test_gds_trains_and_learns():
    m, s = build(True)
    stats = s.run_epochs(3, eval_every=3)
    assert stats[-1].val_acc > 0.3
    assert stats[-1].loss < stats[0].loss
    # No PCIe staging transfers happen under GDS (DMA is part of the
    # device read in this model).
    assert m.pcie[0].transfers == 0
    s.shutdown()


def test_gds_redundant_loading_costs_io_for_small_records():
    """Small records force 8x redundant reads under GDS (the paper's
    reason for leaving it as future work)."""
    m_std, s_std = build(False)
    s_std.run_epochs(1)
    bytes_std = m_std.ssd.bytes_read
    s_std.shutdown()
    m_gds, s_gds = build(True)
    s_gds.run_epochs(1)
    bytes_gds = m_gds.ssd.bytes_read
    s_gds.shutdown()
    assert bytes_gds > 3.0 * bytes_std


def test_gds_reads_stay_in_file_near_eof():
    # 4 KiB granularity on a file whose size is not 4 KiB-aligned.
    m, s = build(True, dim=24)   # 96 B records -> 187.5 KiB file
    stats = s.run_epochs(1)
    assert stats[0].num_batches > 0
    s.shutdown()
