"""Property test: vectorized FeatureBuffer vs. the seed reference.

``repro.bench.hotpath.ReferenceStandbyBuffer`` is a faithful copy of
the original OrderedDict/per-element implementation; random batch
traces (overlapping node sets, standby exhaustion, delayed releases)
must leave both implementations in identical states after every step —
mapping tables, standby LRU order, and statistics alike.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bench.hotpath import ReferenceStandbyBuffer
from repro.core.feature_buffer import FeatureBuffer
from repro.simcore import Simulator

NUM_NODES = 40
NUM_SLOTS = 12


batch = st.lists(st.integers(0, NUM_NODES - 1), min_size=1, max_size=10,
                 unique=True)


@settings(max_examples=150, deadline=None)
@given(st.lists(batch, min_size=1, max_size=15),
       st.integers(1, 4))
def test_feature_buffer_matches_reference_trace(batches, hold):
    """Run begin/allocate/finish + delayed release through both."""
    sim = Simulator()
    fb = FeatureBuffer(sim, NUM_SLOTS, NUM_NODES, dim=1)
    ref = ReferenceStandbyBuffer(NUM_SLOTS, NUM_NODES)

    live = []
    for nodes in batches:
        nodes = np.asarray(nodes, dtype=np.int64)
        cls = fb.begin_batch(nodes)
        need_ref = ref.begin_batch(nodes)
        assert cls.needs_load.tolist() == need_ref.tolist()

        assigned, remaining = fb.allocate_slots(cls.needs_load)
        assigned_ref = ref.allocate_slots(need_ref)
        assert assigned.tolist() == assigned_ref.tolist()
        assert len(assigned) + len(remaining) == len(cls.needs_load)

        fb.finish_load(assigned)
        ref.finish_load(assigned_ref)
        _assert_same_state(fb, ref)

        live.append(nodes)
        if len(live) > hold:
            victim = live.pop(0)
            fb.release(victim)
            ref.release(victim)
            _assert_same_state(fb, ref)
    while live:
        victim = live.pop(0)
        fb.release(victim)
        ref.release(victim)
        _assert_same_state(fb, ref)


def _assert_same_state(fb, ref):
    assert fb.standby.order().tolist() == ref.standby_order()
    assert np.array_equal(fb.slot_of, ref.slot_of)
    assert np.array_equal(fb.reverse, ref.reverse)
    assert np.array_equal(fb.valid, ref.valid)
    assert np.array_equal(fb.ref, ref.ref)
    assert (fb.stat_reused, fb.stat_loaded, fb.stat_evictions) == \
        (ref.stat_reused, ref.stat_loaded, ref.stat_evictions)
    fb.check_invariants()
