"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr().out
    return rc, out


def test_datasets_command(capsys):
    rc, out = run_cli(capsys, "datasets", "--scale", "0.1")
    assert rc == 0
    assert "papers100m-mini" in out
    assert "mag240m-mini" in out
    assert "tiny" not in out


def test_datasets_all_includes_tiny(capsys):
    rc, out = run_cli(capsys, "datasets", "--scale", "0.1", "--all")
    assert rc == 0
    assert "tiny" in out


def test_run_command(capsys):
    rc, out = run_cli(capsys, "run", "gnndrive-gpu", "--dataset", "tiny",
                      "--scale", "1.0", "--batch-size", "20",
                      "--epochs", "1", "--eval")
    assert rc == 0
    assert "gnndrive-gpu on tiny" in out
    assert "epoch" in out


def test_run_command_reports_failure(capsys):
    # A 1-paper-GB host cannot hold Ginex's default-fraction caches and
    # feature working set for this batch size.
    rc, out = run_cli(capsys, "run", "ginex", "--dataset", "tiny",
                      "--scale", "1.0", "--batch-size", "200",
                      "--host-gb", "0.05", "--epochs", "1")
    assert rc == 1
    assert "OOM" in out


def test_compare_command_subset(capsys):
    rc, out = run_cli(capsys, "compare", "--dataset", "tiny",
                      "--scale", "1.0", "--batch-size", "20",
                      "--epochs", "1",
                      "--systems", "gnndrive-gpu", "pyg+")
    assert rc == 0
    assert "gnndrive-gpu" in out and "pyg+" in out
    assert "vs first" in out


def test_experiment_unknown_name(capsys):
    rc, out = run_cli(capsys, "experiment", "fig99")
    assert rc == 2
    assert "unknown experiment" in out


def test_experiment_tab1(capsys):
    rc, out = run_cli(capsys, "experiment", "tab1")
    assert rc == 0
    assert "Reproduced Table 1" in out


def test_fio_command(capsys):
    rc, out = run_cli(capsys, "fio")
    assert rc == 0
    assert "sync bandwidth" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
