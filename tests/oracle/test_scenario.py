"""Scenario plumbing: validation, serialisation, deterministic sampling."""

import pytest

from repro.oracle import Scenario, sample_scenarios
from repro.oracle.scenario import ScenarioRunner


def test_round_trips_through_dict():
    sc = Scenario(name="rt", dataset="tiny", host_gb=8.0, epochs=1,
                  ssd="S3510", ssd_channels=2, fault_plan="chaos", seed=3)
    assert Scenario.from_dict(sc.to_dict()) == sc


@pytest.mark.parametrize("kwargs", [
    {"ssd": "nvme-9000"},
    {"fault_plan": "partial"},
    {"epochs": 0},
    {"batch_size": 0},
    {"host_gb": 0.0},
    {"dataset_scale": 0.0},
    {"dataset_scale": 1.5},
    {"ssd_channels": 0},
])
def test_rejects_invalid_knobs(kwargs):
    with pytest.raises(ValueError):
        Scenario(name="bad", **kwargs)


def test_ssd_channels_override():
    sc = Scenario(name="ch", ssd="PM883", ssd_channels=2)
    assert sc.ssd_spec().channels == 2
    assert sc.ssd_spec(channels=16).channels == 16
    assert Scenario(name="d", ssd="PM883").ssd_spec().channels == 8


def test_sampling_is_deterministic_and_valid():
    a = sample_scenarios(20, seed=5)
    b = sample_scenarios(20, seed=5)
    assert a == b
    assert len({sc.name for sc in a}) == 20
    assert a != sample_scenarios(20, seed=6)


def test_sampling_rejects_empty():
    with pytest.raises(ValueError):
        sample_scenarios(0)


def test_runner_memoises_identical_runs():
    runner = ScenarioRunner(Scenario(name="memo", dataset="tiny",
                                     epochs=1))
    first = runner.run("gnndrive-gpu")
    again = runner.run("gnndrive-gpu")
    assert first is again
    perturbed = runner.run("gnndrive-gpu", host_gb=64.0)
    assert perturbed is not first


def test_runner_runs_are_sanitized_and_traced():
    runner = ScenarioRunner(Scenario(name="tr", dataset="tiny", epochs=1))
    run = runner.run("gnndrive-gpu")
    assert run.ok and run.clean
    assert run.digest and len(run.digest) == 64
    assert run.trace, "sanitize_trace must retain the event tuples"
