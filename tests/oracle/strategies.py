"""Hypothesis strategies over the oracle scenario space.

Mirrors the value pools of :mod:`repro.oracle.sampling` exactly, so the
property tests and the ``python -m repro.bench oracle --fuzz`` sampler
explore the same space — a hypothesis-shrunk counterexample is always a
scenario the bench could have drawn, and belongs in
``tests/oracle/corpus/`` verbatim.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.oracle.sampling import (BATCH_SIZES, CHANNELS, DATASET_SCALES,
                                   DATASETS, EPOCHS, FAULT_PLANS, HOST_GB,
                                   MODEL_KINDS, SSDS)
from repro.oracle.scenario import Scenario


@st.composite
def scenarios(draw, fault_plans=tuple(set(FAULT_PLANS)),
              datasets=DATASETS, max_epochs=max(EPOCHS)) -> Scenario:
    """One valid :class:`Scenario` drawn from the bench sampler's pools.

    *fault_plans*/*datasets*/*max_epochs* let fast tests restrict to
    the cheap corner (e.g. ``datasets=("tiny",)``) without changing any
    per-dimension pool values.
    """
    dataset = draw(st.sampled_from(datasets))
    return Scenario(
        name="hyp",
        dataset=dataset,
        dataset_scale=draw(st.sampled_from(DATASET_SCALES[dataset])),
        host_gb=draw(st.sampled_from(HOST_GB)),
        epochs=draw(st.sampled_from(
            tuple(e for e in EPOCHS if e <= max_epochs))),
        batch_size=draw(st.sampled_from(BATCH_SIZES)),
        model_kind=draw(st.sampled_from(MODEL_KINDS)),
        ssd=draw(st.sampled_from(SSDS)),
        ssd_channels=draw(st.sampled_from(CHANNELS)),
        fault_plan=draw(st.sampled_from(fault_plans)),
        seed=draw(st.integers(min_value=0, max_value=3)),
    )
