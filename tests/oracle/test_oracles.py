"""The oracle catalogue: units, corpus replay, seeded property fuzz."""

import json
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.oracle import ORACLES, Scenario, check_scenario
from repro.oracle.oracles import (FeatureBytesVsPyGPlus, SanitizerClean,
                                  Violation, lru_misses)
from repro.oracle.scenario import ScenarioRunner

from tests.oracle.strategies import scenarios

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = sorted(f for f in os.listdir(CORPUS_DIR) if f.endswith(".json"))


# ----------------------------------------------------------------------
# Pure units
# ----------------------------------------------------------------------
def test_oracle_names_are_unique():
    names = [o.name for o in ORACLES]
    assert len(names) == len(set(names))
    assert all(o.kind in ("differential", "metamorphic") for o in ORACLES)


def test_violation_render_names_oracle_and_scenario():
    v = Violation(oracle="belady-hits-ge-lru", scenario="s1",
                  detail="hit rate fell")
    assert "belady-hits-ge-lru" in v.render()
    assert "s1" in v.render()
    assert "hit rate fell" in v.render()


def test_lru_misses_reference():
    batches = [np.array([1, 2, 3]), np.array([1, 2, 4]),
               np.array([3, 4, 1])]
    # capacity 2: every access after warmup keeps evicting.
    assert lru_misses(batches, 2) == 8
    # Infinite capacity: only cold misses remain.
    assert lru_misses(batches, 100) == 4
    with pytest.raises(ValueError):
        lru_misses(batches, 0)


# ----------------------------------------------------------------------
# Corpus replay (tier-1): every scenario here once exposed a defect.
# ----------------------------------------------------------------------
@pytest.mark.oracle
@pytest.mark.parametrize("fname", CORPUS)
def test_corpus_replays_clean(fname):
    with open(os.path.join(CORPUS_DIR, fname)) as fh:
        payload = json.load(fh)
    scenario = Scenario.from_dict(payload)
    assert scenario.name == fname[:-len(".json")], \
        "corpus file stem must match the scenario name"
    report = check_scenario(scenario)
    assert report["ok"], report["violations"]
    assert report["checked"], "a corpus scenario must exercise oracles"


def test_corpus_filenames_are_documented():
    with open(os.path.join(CORPUS_DIR, "README.md")) as fh:
        readme = fh.read()
    for fname in CORPUS:
        assert fname in readme, f"{fname} missing from corpus README"


# ----------------------------------------------------------------------
# Applicability gates
# ----------------------------------------------------------------------
def test_feat_bytes_oracle_skips_sub_sector_records():
    # tiny's 128 B records sector-round to 4x amplification on the
    # direct-I/O path; the paper's volume claim excludes that regime.
    runner = ScenarioRunner(Scenario(name="gate", dataset="tiny",
                                     epochs=2))
    assert not FeatureBytesVsPyGPlus().applicable(runner)


def test_feat_bytes_oracle_skips_single_epoch():
    sc = Scenario(name="cold", dataset="papers100m-mini",
                  dataset_scale=0.15, host_gb=16.0, epochs=1,
                  batch_size=10)
    assert not FeatureBytesVsPyGPlus().applicable(ScenarioRunner(sc))


def test_chaos_gates_metamorphic_oracles():
    sc = Scenario(name="chaos-gate", dataset="tiny", epochs=1,
                  fault_plan="chaos")
    runner = ScenarioRunner(sc)
    gated = [o.name for o in ORACLES
             if o.name != "sanitizer-clean" and not o.applicable(runner)]
    # Every wall-clock-anchored monotonicity oracle must step aside.
    for name in ("feat-bytes-le-pygplus", "host-memory-hits-monotone",
                 "host-memory-time-monotone", "ssd-channels-time-monotone",
                 "serve-load-p99-monotone"):
        assert name in gated


def test_serve_oracle_applicable_without_faults():
    from repro.oracle.oracles import ServeLoadP99Monotone
    runner = ScenarioRunner(Scenario(name="serve-gate", dataset="tiny",
                                     epochs=1))
    oracle = ServeLoadP99Monotone()
    assert oracle.applicable(runner)
    # The derived serve scenario must seal batches immediately: a
    # positive max_wait legitimately raises low-load latency and would
    # break the law the oracle pins.
    assert oracle.check(runner) == []


# ----------------------------------------------------------------------
# Seeded hypothesis fuzz (derandomized: same examples every run).
# ----------------------------------------------------------------------
@pytest.mark.oracle
@settings(max_examples=5, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario=scenarios(datasets=("tiny",), max_epochs=1))
def test_fuzzed_scenarios_run_sanitizer_clean(scenario):
    report = check_scenario(scenario, oracles=(SanitizerClean(),))
    assert report["ok"], report["violations"]
