"""Exit-code contracts: oracle/sanitizer violations must fail the CLI.

CI keys off process exit codes, so a red oracle that exits 0 is a
silent pass — these tests pin the wiring from violation to non-zero
return for both ``repro`` and ``python -m repro.bench``.
"""

import json

import pytest

import repro.bench.oracle as bench_oracle
import repro.bench.runner as bench_runner
from repro.bench.__main__ import main as bench_main
from repro.cli import main as cli_main
from repro.errors import SanitizerError
from repro.oracle import GOLDEN_SCENARIO, Scenario

TINY = Scenario(name="cli-tiny", dataset="tiny", epochs=1)


# ----------------------------------------------------------------------
# repro oracle / python -m repro.bench oracle
# ----------------------------------------------------------------------
def test_bench_oracle_exit_zero_when_clean(tmp_path):
    out = str(tmp_path / "BENCH_oracle.json")
    rc = bench_main(["oracle", "--fuzz", "0", "--no-golden", "-o", out,
                     "--quiet"])
    assert rc == 0
    artifact = json.load(open(out))
    assert artifact["ok"] and artifact["matrix"]["ok"]
    assert "fuzz" not in artifact


def test_bench_oracle_exit_nonzero_on_missing_golden(tmp_path):
    artifact = bench_oracle.run_oracle(
        matrix=(), fuzz=0, golden=True, golden_dir=str(tmp_path),
        output=None, verbose=False)
    assert not artifact["ok"]
    assert "regen" in artifact["golden"]["error"]


def test_bench_oracle_exit_nonzero_on_golden_mismatch(tmp_path, monkeypatch):
    digests = {s: "0" * 64 for s in ("gnndrive-gpu",)}
    with open(tmp_path / "digests.json", "w") as fh:
        json.dump({"scenario": GOLDEN_SCENARIO.to_dict(),
                   "digests": digests}, fh)
    artifact = bench_oracle.run_oracle(
        matrix=(), fuzz=0, golden=True, golden_dir=str(tmp_path),
        output=None, verbose=False)
    assert not artifact["ok"]
    systems = [m["system"] for m in artifact["golden"]["mismatches"]]
    assert "gnndrive-gpu" in systems


def test_repro_oracle_exit_codes(monkeypatch):
    monkeypatch.setattr(bench_oracle, "run_oracle",
                        lambda **kw: {"ok": True})
    assert cli_main(["oracle"]) == 0
    monkeypatch.setattr(bench_oracle, "run_oracle",
                        lambda **kw: {"ok": False})
    assert cli_main(["oracle"]) == 1


def test_oracle_violation_fails_the_artifact(monkeypatch):
    """A violating scenario report makes run_oracle red end to end."""

    def fake_check(scenario, oracles=None):
        return {"scenario": scenario.to_dict(),
                "checked": ["always-fires"], "skipped": [],
                "violations": ["[always-fires] synthetic violation"],
                "ok": False}

    monkeypatch.setattr(bench_oracle, "check_scenario", fake_check)
    artifact = bench_oracle.run_oracle(matrix=(TINY,), fuzz=0,
                                       golden=False, output=None,
                                       verbose=False)
    assert not artifact["ok"]
    assert any("synthetic violation" in v
               for v in artifact["matrix"]["violations"])


# ----------------------------------------------------------------------
# repro run --sanitize
# ----------------------------------------------------------------------
def test_run_sanitize_clean_exits_zero(capsys):
    rc = cli_main(["run", "gnndrive-gpu", "--dataset", "tiny",
                   "--scale", "1.0", "--epochs", "1", "--sanitize"])
    assert rc == 0


def test_run_sanitize_violation_exits_nonzero(monkeypatch, capsys):
    def boom(*a, **kw):
        raise SanitizerError("[leak] host:staging: leaked 42 B")

    monkeypatch.setattr(bench_runner, "run_system", boom)
    rc = cli_main(["run", "gnndrive-gpu", "--dataset", "tiny",
                   "--scale", "1.0", "--epochs", "1", "--sanitize"])
    assert rc == 1
    assert "sanitizer violation" in capsys.readouterr().out


def test_run_sanitize_findings_exit_nonzero(monkeypatch, capsys):
    """Non-strict findings left on the machine also fail the command."""

    class FakeFinding:
        def render(self):
            return "[ring] ring(depth=8): completion before submission"

    class FakeSanitizer:
        clean = False
        findings = [FakeFinding()]

    class FakeMachine:
        sanitizer = FakeSanitizer()

    class FakeResult:
        ok = True
        status = "ok"
        stats = []
        machine = FakeMachine()
        error = ""

    monkeypatch.setattr(bench_runner, "run_system",
                        lambda *a, **kw: FakeResult())
    rc = cli_main(["run", "gnndrive-gpu", "--dataset", "tiny",
                   "--scale", "1.0", "--epochs", "1", "--sanitize"])
    assert rc == 1
    assert "completion before submission" in capsys.readouterr().out
