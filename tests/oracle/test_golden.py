"""Golden-trace pinning: the committed digests and the divergence diff."""

import json
import os

import pytest

from repro.oracle import (GOLDEN_DIR, GOLDEN_SCENARIO, GOLDEN_SYSTEMS,
                          check_golden, golden_digests)
from repro.oracle.golden import _trace_name, first_divergence_vs_golden
from repro.oracle.scenario import ScenarioRunner


def test_golden_files_are_committed():
    digests = golden_digests()
    assert set(digests) == set(GOLDEN_SYSTEMS)
    for system in GOLDEN_SYSTEMS:
        path = os.path.join(GOLDEN_DIR, _trace_name(system))
        assert os.path.exists(path), f"missing golden trace for {system}"
    with open(os.path.join(GOLDEN_DIR, "digests.json")) as fh:
        assert json.load(fh)["scenario"] == GOLDEN_SCENARIO.to_dict()


@pytest.mark.oracle
def test_golden_digests_match():
    """Tier-1 drift tripwire: the pinned scenario replays bit-for-bit."""
    mismatches = check_golden()
    assert mismatches == [], "\n".join(m["detail"] for m in mismatches)


@pytest.mark.oracle
def test_perturbed_knob_diverges_with_readable_diff():
    """Halving the SSD channel count must change the pinned trace, and
    the report must name the first divergent event, not just the hash."""
    runner = ScenarioRunner(GOLDEN_SCENARIO)
    perturbed = runner.run("gnndrive-gpu", channels=4)
    assert perturbed.ok
    assert perturbed.digest != golden_digests()["gnndrive-gpu"]
    div = first_divergence_vs_golden("gnndrive-gpu", perturbed.trace)
    assert div is not None
    assert isinstance(div["step"], int)
    assert div["golden"] != div["current"]
    # The lines are the sanitizer tuples rendered readably.
    for line in (div["golden"], div["current"]):
        when, priority, seq, kind, name = line.split("\t")
        assert float(when) >= 0.0
        assert priority in ("0", "1")
        assert int(seq) >= 0
        assert kind


def test_missing_golden_dir_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        check_golden(golden_dir=str(tmp_path))


def test_tampered_golden_reports_divergence(tmp_path):
    """A corrupted pin is reported with the offending first event."""
    golden_dir = str(tmp_path)
    with open(os.path.join(GOLDEN_DIR, "digests.json")) as fh:
        payload = json.load(fh)
    payload["digests"]["gnndrive-gpu"] = "0" * 64
    with open(os.path.join(golden_dir, "digests.json"), "w") as fh:
        json.dump(payload, fh)
    src = os.path.join(GOLDEN_DIR, _trace_name("gnndrive-gpu"))
    with open(src) as fh:
        lines = fh.read().splitlines()
    lines[5] = lines[5] + "-tampered"
    with open(os.path.join(golden_dir, _trace_name("gnndrive-gpu")),
              "w") as fh:
        fh.write("\n".join(lines) + "\n")
    for system in GOLDEN_SYSTEMS:
        if system == "gnndrive-gpu":
            continue
        payload["digests"][system] = payload["digests"][system]
        with open(os.path.join(GOLDEN_DIR, _trace_name(system))) as fh:
            trace = fh.read()
        with open(os.path.join(golden_dir, _trace_name(system)), "w") as fh:
            fh.write(trace)
    mismatches = check_golden(golden_dir=golden_dir)
    assert [m["system"] for m in mismatches] == ["gnndrive-gpu"]
    m = mismatches[0]
    assert m["divergence"]["step"] == 5
    assert "first divergence at step 5" in m["detail"]
