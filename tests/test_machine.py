"""Tests for the Machine abstraction and its process helpers."""

import pytest

from repro.errors import OutOfMemoryError
from repro.machine import GB, Machine, MachineSpec, DEFAULT_SCALE


def test_paper_scaled_defaults():
    spec = MachineSpec.paper_scaled(host_gb=32)
    assert spec.host_capacity == int(32 * GB * DEFAULT_SCALE)
    assert spec.num_gpus == 1
    assert spec.ssd.name == "PM883"


def test_paper_scaled_overrides():
    spec = MachineSpec.paper_scaled(host_gb=8, num_gpus=4, cpu_cores=8)
    assert spec.num_gpus == 4
    assert spec.cpu_cores == 8
    assert spec.host_capacity == int(8 * GB * DEFAULT_SCALE)


def test_machine_wires_components():
    m = Machine(MachineSpec.paper_scaled(host_gb=32, num_gpus=2))
    assert len(m.gpus) == 2
    assert len(m.pcie) == 2
    assert m.page_cache.host is m.host
    assert m.cpu.capacity == m.spec.cpu_cores


def test_cpu_task_charges_core_and_probe():
    m = Machine(MachineSpec.paper_scaled(host_gb=32))

    def work(sim):
        yield from m.cpu_task(0.5)

    m.sim.run_process(work(m.sim))
    assert m.sim.now == pytest.approx(0.5)
    assert m.probe.cpu.busy_time() == pytest.approx(0.5)
    assert m.cpu.in_use == 0  # released


def test_cpu_tasks_queue_beyond_core_count():
    m = Machine(MachineSpec.paper_scaled(host_gb=32, cpu_cores=2))

    def work(sim):
        yield from m.cpu_task(1.0)

    procs = [m.sim.process(work(m.sim)) for _ in range(4)]
    m.sim.drain(procs)
    assert m.sim.now == pytest.approx(2.0)  # two waves on two cores


def test_gpu_task_records_busy_time():
    m = Machine(MachineSpec.paper_scaled(host_gb=32, num_gpus=2))

    def work(sim):
        yield from m.gpu_task(1, 0.25)

    m.sim.run_process(work(m.sim))
    assert m.gpu_busy[1].busy_time() == pytest.approx(0.25)
    assert m.gpu_busy[0].busy_time() == 0.0


def test_io_wait_marks_probe():
    m = Machine(MachineSpec.paper_scaled(host_gb=32))

    def work(sim):
        value = yield from m.io_wait(sim.timeout(0.3, value="data"))
        return value

    assert m.sim.run_process(work(m.sim)) == "data"
    assert m.probe.io.busy_time() == pytest.approx(0.3)


def test_utilization_snapshot_buckets():
    m = Machine(MachineSpec.paper_scaled(host_gb=32))

    def work(sim):
        yield from m.cpu_task(1.0)
        yield sim.timeout(1.0)

    m.sim.run_process(work(m.sim))
    snap = m.utilization_snapshot(0.0, 2.0, buckets=2)
    assert snap["cpu"][0] > snap["cpu"][1]


def test_gpu_memory_budget_enforced():
    m = Machine(MachineSpec.paper_scaled(host_gb=32))
    with pytest.raises(OutOfMemoryError):
        m.gpus[0].allocate(m.spec.gpu_capacity + 1)


def test_sample_cost_scale_slows_sampling_model():
    fast = Machine(MachineSpec.paper_scaled(host_gb=32))
    slow = Machine(MachineSpec.paper_scaled(host_gb=32,
                                            sample_cost_scale=3.0))
    t_fast = fast.cpu_cost.sample_compute_time(100, 1000)
    t_slow = slow.cpu_cost.sample_compute_time(100, 1000)
    assert t_slow == pytest.approx(3 * t_fast)


def test_machine_spec_validation():
    from repro.errors import ConfigError

    bad = [
        dict(host_capacity=0),
        dict(host_reserve=-1),
        dict(host_reserve=int(32 * GB * DEFAULT_SCALE)),  # >= capacity
        dict(cpu_cores=0),
        dict(num_gpus=0),
        dict(gpu_capacity=0),
        dict(pcie_bandwidth=0.0),
        dict(pcie_bandwidth=float("inf")),
        dict(pcie_latency=-1e-6),
        dict(sample_cost_scale=0.0),
        dict(faults="not-a-plan"),
    ]
    for overrides in bad:
        with pytest.raises(ConfigError):
            MachineSpec.paper_scaled(host_gb=32, **overrides)


def test_machine_without_faults_has_no_injector():
    m = Machine(MachineSpec.paper_scaled(host_gb=32))
    assert m.faults is None
    assert m.ssd.faults is None
    assert m.fault_counters() == {}
    assert m.fault_counters_delta({}) == {}


def test_machine_with_fault_plan_wires_injector():
    from repro.faults import FaultPlan, FaultSpec

    plan = FaultPlan((FaultSpec("noop", "read_error", probability=0.0),))
    m = Machine(MachineSpec.paper_scaled(host_gb=32, faults=plan))
    assert m.faults is not None
    assert m.ssd.faults is m.faults
    counters = m.fault_counters()
    assert counters["injected"] == 0
    m.faults.ledger.retried = 2
    assert m.fault_counters_delta(counters) == {"retried": 2}


def test_pressure_process_shrinks_and_restores_budget():
    from repro.faults import FaultPlan, FaultSpec

    plan = FaultPlan((FaultSpec("squeeze", "mem_pressure", fraction=0.25,
                                start=1e-3, duration=2e-3, period=0.0),))
    m = Machine(MachineSpec.paper_scaled(host_gb=32, faults=plan))
    base = m.host.available

    def watch(sim):
        yield sim.timeout(2e-3)  # inside the episode
        squeezed = m.host.available
        yield sim.timeout(2e-3)  # after it
        return squeezed, m.host.available

    squeezed, after = m.sim.run_process(watch(m.sim))
    expected = int(0.25 * m.spec.host_capacity)
    assert squeezed == base - expected
    assert after == base
    led = m.faults.ledger
    assert led.pressure_episodes == 1
    assert led.pressure_time == pytest.approx(2e-3)
