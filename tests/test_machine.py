"""Tests for the Machine abstraction and its process helpers."""

import pytest

from repro.errors import OutOfMemoryError
from repro.machine import GB, Machine, MachineSpec, DEFAULT_SCALE


def test_paper_scaled_defaults():
    spec = MachineSpec.paper_scaled(host_gb=32)
    assert spec.host_capacity == int(32 * GB * DEFAULT_SCALE)
    assert spec.num_gpus == 1
    assert spec.ssd.name == "PM883"


def test_paper_scaled_overrides():
    spec = MachineSpec.paper_scaled(host_gb=8, num_gpus=4, cpu_cores=8)
    assert spec.num_gpus == 4
    assert spec.cpu_cores == 8
    assert spec.host_capacity == int(8 * GB * DEFAULT_SCALE)


def test_machine_wires_components():
    m = Machine(MachineSpec.paper_scaled(host_gb=32, num_gpus=2))
    assert len(m.gpus) == 2
    assert len(m.pcie) == 2
    assert m.page_cache.host is m.host
    assert m.cpu.capacity == m.spec.cpu_cores


def test_cpu_task_charges_core_and_probe():
    m = Machine(MachineSpec.paper_scaled(host_gb=32))

    def work(sim):
        yield from m.cpu_task(0.5)

    m.sim.run_process(work(m.sim))
    assert m.sim.now == pytest.approx(0.5)
    assert m.probe.cpu.busy_time() == pytest.approx(0.5)
    assert m.cpu.in_use == 0  # released


def test_cpu_tasks_queue_beyond_core_count():
    m = Machine(MachineSpec.paper_scaled(host_gb=32, cpu_cores=2))

    def work(sim):
        yield from m.cpu_task(1.0)

    procs = [m.sim.process(work(m.sim)) for _ in range(4)]
    m.sim.drain(procs)
    assert m.sim.now == pytest.approx(2.0)  # two waves on two cores


def test_gpu_task_records_busy_time():
    m = Machine(MachineSpec.paper_scaled(host_gb=32, num_gpus=2))

    def work(sim):
        yield from m.gpu_task(1, 0.25)

    m.sim.run_process(work(m.sim))
    assert m.gpu_busy[1].busy_time() == pytest.approx(0.25)
    assert m.gpu_busy[0].busy_time() == 0.0


def test_io_wait_marks_probe():
    m = Machine(MachineSpec.paper_scaled(host_gb=32))

    def work(sim):
        value = yield from m.io_wait(sim.timeout(0.3, value="data"))
        return value

    assert m.sim.run_process(work(m.sim)) == "data"
    assert m.probe.io.busy_time() == pytest.approx(0.3)


def test_utilization_snapshot_buckets():
    m = Machine(MachineSpec.paper_scaled(host_gb=32))

    def work(sim):
        yield from m.cpu_task(1.0)
        yield sim.timeout(1.0)

    m.sim.run_process(work(m.sim))
    snap = m.utilization_snapshot(0.0, 2.0, buckets=2)
    assert snap["cpu"][0] > snap["cpu"][1]


def test_gpu_memory_budget_enforced():
    m = Machine(MachineSpec.paper_scaled(host_gb=32))
    with pytest.raises(OutOfMemoryError):
        m.gpus[0].allocate(m.spec.gpu_capacity + 1)


def test_sample_cost_scale_slows_sampling_model():
    fast = Machine(MachineSpec.paper_scaled(host_gb=32))
    slow = Machine(MachineSpec.paper_scaled(host_gb=32,
                                            sample_cost_scale=3.0))
    t_fast = fast.cpu_cost.sample_compute_time(100, 1000)
    t_slow = slow.cpu_cost.sample_compute_time(100, 1000)
    assert t_slow == pytest.approx(3 * t_fast)
