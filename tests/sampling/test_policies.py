"""Tests for the alternative sampling policies."""

import numpy as np
import pytest

from repro.graph import csc_from_edges, make_dataset
from repro.sampling import (
    DegreeBiasedSampler,
    NeighborSampler,
    WeightedNeighborSampler,
    cache_biased_weights,
)


def star_graph():
    """Node 0 has in-neighbors 1..4."""
    src = np.array([1, 2, 3, 4])
    dst = np.array([0, 0, 0, 0])
    return csc_from_edges(src, dst, num_nodes=5)


def test_weighted_sampler_respects_weights():
    g = star_graph()
    # Node 3 weighted 100x over its siblings.
    w = np.ones(5)
    w[3] = 100.0
    s = WeightedNeighborSampler(g, (1,), np.random.default_rng(0), w)
    picks = [int(s.sample(np.array([0])).all_nodes[-1] == 3)
             or int(3 in s.sample(np.array([0])).all_nodes)
             for _ in range(100)]
    # Expect ~97% of draws to hit node 3.
    assert np.mean(picks) > 0.8


def test_weighted_sampler_uniform_weights_match_support():
    g = star_graph()
    s = WeightedNeighborSampler(g, (1,), np.random.default_rng(0),
                                np.ones(5))
    seen = set()
    for _ in range(200):
        sub = s.sample(np.array([0]))
        seen.update(int(v) for v in sub.all_nodes if v != 0)
    assert seen == {1, 2, 3, 4}


def test_weighted_sampler_only_true_neighbors():
    ds = make_dataset("tiny", seed=0)
    w = np.ones(ds.num_nodes)
    s = WeightedNeighborSampler(ds.graph, (3,), np.random.default_rng(1), w)
    sub = s.sample(ds.train_idx[:10])
    layer = sub.layers[0]
    src_global = sub.all_nodes[layer.src_pos]
    dst_global = sub.seeds[layer.dst_pos]
    for u, v in zip(src_global, dst_global):
        assert u in ds.graph.neighbors(v)


def test_weighted_sampler_validation():
    g = star_graph()
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        WeightedNeighborSampler(g, (1,), rng, np.ones(3))
    with pytest.raises(ValueError):
        WeightedNeighborSampler(g, (1,), rng, np.zeros(5))


def test_degree_biased_prefers_hubs():
    ds = make_dataset("tiny", seed=0)
    rng = np.random.default_rng(0)
    uniform = NeighborSampler(ds.graph, (3, 3), np.random.default_rng(0))
    biased = DegreeBiasedSampler(ds.graph, (3, 3),
                                 np.random.default_rng(0), alpha=2.0)
    out_deg = np.bincount(ds.graph.indices, minlength=ds.num_nodes)
    seeds = ds.train_idx[:40]

    def mean_outdeg(sampler):
        sub = sampler.sample(seeds)
        frontier = sub.all_nodes[len(sub.seeds):]
        return out_deg[frontier].mean() if len(frontier) else 0.0

    assert mean_outdeg(biased) > mean_outdeg(uniform)


def test_cache_biased_weights_boost_hot_set():
    ds = make_dataset("tiny", seed=0)
    hot = np.arange(100)
    w = cache_biased_weights(ds.graph, hot, boost=8.0)
    assert w[50] == 8.0
    assert w[500] == 1.0
    with pytest.raises(ValueError):
        cache_biased_weights(ds.graph, hot, boost=0.0)


def test_cache_biased_sampler_hits_hot_nodes_more():
    ds = make_dataset("tiny", seed=0)
    rng = np.random.default_rng(3)
    hot = rng.choice(ds.num_nodes, size=200, replace=False)
    seeds = ds.train_idx[:40]

    plain = NeighborSampler(ds.graph, (3, 3), np.random.default_rng(0))
    boosted = WeightedNeighborSampler(
        ds.graph, (3, 3), np.random.default_rng(0),
        cache_biased_weights(ds.graph, hot, boost=16.0))

    def hot_fraction(sampler):
        sub = sampler.sample(seeds)
        frontier = sub.all_nodes[len(sub.seeds):]
        return np.isin(frontier, hot).mean() if len(frontier) else 0.0

    assert hot_fraction(boosted) > hot_fraction(plain)


def test_policies_compose_with_gnndrive():
    """A policy sampler slot-in: GNNDrive trains with a weighted
    sampler's subgraphs (systems only see SampledSubgraph)."""
    from repro.models import make_model, Adam
    from repro.models.train import train_step

    ds = make_dataset("tiny", seed=0)
    s = DegreeBiasedSampler(ds.graph, (3, 3), np.random.default_rng(0))
    model = make_model("sage", ds.dim, 16, ds.num_classes, 2, seed=0)
    opt = Adam(model.parameters(), lr=3e-3)
    sub = s.sample(ds.train_idx[:20])
    loss, _ = train_step(model, opt, ds.features.gather(sub.all_nodes),
                         sub, ds.labels)
    assert np.isfinite(loss)
