"""Tests for mini-batch planning, superbatches, and segments."""

import numpy as np
import pytest

from repro.sampling import MinibatchPlan, split_segments


def make_plan(n=100, bs=10, shuffle=True, drop_last=False, seed=0):
    return MinibatchPlan(np.arange(n), bs, np.random.default_rng(seed),
                         shuffle=shuffle, drop_last=drop_last)


def test_batches_cover_training_set():
    plan = make_plan(95, 10)
    batches = plan.epoch_batches()
    assert len(batches) == 10
    assert len(batches[-1]) == 5
    got = np.sort(np.concatenate(batches))
    assert np.array_equal(got, np.arange(95))


def test_drop_last():
    plan = make_plan(95, 10, drop_last=True)
    assert plan.num_batches == 9
    batches = plan.epoch_batches()
    assert all(len(b) == 10 for b in batches)


def test_shuffle_differs_across_epochs_but_seeded():
    plan = make_plan(50, 10, seed=1)
    e1 = np.concatenate(plan.epoch_batches())
    e2 = np.concatenate(plan.epoch_batches())
    assert not np.array_equal(e1, e2)
    plan_again = make_plan(50, 10, seed=1)
    assert np.array_equal(e1, np.concatenate(plan_again.epoch_batches()))


def test_no_shuffle_preserves_order():
    plan = make_plan(30, 10, shuffle=False)
    batches = plan.epoch_batches()
    assert np.array_equal(batches[0], np.arange(10))


def test_superbatches_group_minibatches():
    plan = make_plan(100, 10)
    sbs = plan.superbatches(3)
    assert [len(s) for s in sbs] == [3, 3, 3, 1]
    with pytest.raises(ValueError):
        plan.superbatches(0)


def test_plan_validation():
    with pytest.raises(ValueError):
        make_plan(10, 0)
    with pytest.raises(ValueError):
        MinibatchPlan(np.array([], dtype=np.int64), 10,
                      np.random.default_rng(0))


def test_split_segments_partition_training_set():
    rng = np.random.default_rng(0)
    segs = split_segments(np.arange(100), 4, rng)
    assert len(segs) == 4
    assert sum(len(s) for s in segs) == 100
    combined = np.sort(np.concatenate(segs))
    assert np.array_equal(combined, np.arange(100))
    # Near-equal sizes.
    sizes = [len(s) for s in segs]
    assert max(sizes) - min(sizes) <= 1


def test_split_segments_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        split_segments(np.arange(10), 0, rng)
    with pytest.raises(ValueError):
        split_segments(np.arange(3), 5, rng)
