"""Tests for the neighbor sampler and subgraph invariants."""

import numpy as np
import pytest

from repro.graph import csc_from_edges, make_dataset
from repro.sampling import LayerAdj, NeighborSampler


def chain_graph():
    # 0 <- 1 <- 2 <- 3 (in-neighbor edges: 1->0, 2->1, 3->2)
    src = np.array([1, 2, 3])
    dst = np.array([0, 1, 2])
    return csc_from_edges(src, dst, num_nodes=4)


def test_sample_chain_expands_hops():
    g = chain_graph()
    s = NeighborSampler(g, fanouts=(1, 1), rng=np.random.default_rng(0))
    sub = s.sample(np.array([0]))
    assert list(sub.seeds) == [0]
    # 2 hops from node 0 reach {0, 1, 2}.
    assert set(sub.all_nodes) == {0, 1, 2}
    assert len(sub.layers) == 2
    assert len(sub.hop_frontiers) == 2


def test_prefix_property_holds():
    ds = make_dataset("tiny", seed=0)
    s = NeighborSampler(ds.graph, fanouts=(5, 5), rng=np.random.default_rng(1))
    sub = s.sample(ds.train_idx[:20])
    # Outer node set must be a prefix of the inner set at every layer.
    # Reconstruct: frontier 0 = seeds; frontier 1 prefix of all_nodes.
    assert np.array_equal(sub.hop_frontiers[0], sub.seeds)
    n0 = len(sub.hop_frontiers[1])
    # layers are innermost-first; outermost layer's dst = seeds.
    assert sub.layers[-1].num_dst == len(sub.seeds)
    assert sub.layers[0].num_src == len(sub.all_nodes)
    # hop_frontiers[1] equals the first n0 entries of all_nodes.
    assert np.array_equal(sub.hop_frontiers[1], sub.all_nodes[:n0])


def test_edges_reference_true_neighbors():
    ds = make_dataset("tiny", seed=0)
    g = ds.graph
    s = NeighborSampler(g, fanouts=(3,), rng=np.random.default_rng(2))
    seeds = ds.train_idx[:10]
    sub = s.sample(seeds)
    layer = sub.layers[0]
    src_global = sub.all_nodes[layer.src_pos]
    dst_global = sub.seeds[layer.dst_pos]
    for u, v in zip(src_global, dst_global):
        assert u in g.neighbors(v)


def test_fanout_bounds_edge_count():
    ds = make_dataset("tiny", seed=0)
    s = NeighborSampler(ds.graph, fanouts=(4, 4), rng=np.random.default_rng(0))
    sub = s.sample(ds.train_idx[:8])
    outer = sub.layers[-1]
    assert outer.num_edges <= 8 * 4
    inner = sub.layers[0]
    assert inner.num_edges <= inner.num_dst * 4


def test_zero_degree_seeds_produce_no_edges():
    g = csc_from_edges(np.array([1]), np.array([0]), num_nodes=3)
    s = NeighborSampler(g, fanouts=(2,), rng=np.random.default_rng(0))
    sub = s.sample(np.array([2]))  # node 2 has no in-neighbors
    assert sub.layers[0].num_edges == 0
    assert set(sub.all_nodes) == {2}


def test_seeds_deduplicated():
    g = chain_graph()
    s = NeighborSampler(g, fanouts=(1,), rng=np.random.default_rng(0))
    sub = s.sample(np.array([1, 1, 0]))
    assert len(sub.seeds) == 2


def test_sampler_deterministic_per_stream():
    ds = make_dataset("tiny", seed=0)
    a = NeighborSampler(ds.graph, (5, 5), np.random.default_rng(7))
    b = NeighborSampler(ds.graph, (5, 5), np.random.default_rng(7))
    sa = a.sample(ds.train_idx[:10])
    sb = b.sample(ds.train_idx[:10])
    assert np.array_equal(sa.all_nodes, sb.all_nodes)
    assert np.array_equal(sa.layers[0].src_pos, sb.layers[0].src_pos)


def test_sampler_validation():
    g = chain_graph()
    with pytest.raises(ValueError):
        NeighborSampler(g, fanouts=(), rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        NeighborSampler(g, fanouts=(0,), rng=np.random.default_rng(0))
    s = NeighborSampler(g, fanouts=(1,), rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        s.sample(np.array([], dtype=np.int64))


def test_layer_adj_validation():
    with pytest.raises(ValueError):
        LayerAdj(np.array([0]), np.array([0, 1]), 2, 1)
    with pytest.raises(ValueError):
        LayerAdj(np.array([5]), np.array([0]), 2, 1)  # src out of range
    with pytest.raises(ValueError):
        LayerAdj(np.array([0]), np.array([3]), 4, 2)  # dst out of range
    with pytest.raises(ValueError):
        LayerAdj(np.empty(0, np.int64), np.empty(0, np.int64), 1, 2)


def test_mean_matrix_rows_normalised():
    adj = LayerAdj(np.array([0, 1, 2, 2]), np.array([0, 0, 0, 1]), 3, 2)
    m = adj.mean_matrix()
    assert m.shape == (2, 3)
    sums = np.asarray(m.sum(axis=1)).ravel()
    np.testing.assert_allclose(sums, [1.0, 1.0])


def test_gcn_matrix_includes_self_loops():
    adj = LayerAdj(np.array([1]), np.array([0]), 2, 1)
    m = adj.gcn_matrix().toarray()
    assert m[0, 0] > 0  # self loop
    assert m[0, 1] > 0  # sampled edge


def test_layer_sizes_and_total_edges():
    ds = make_dataset("tiny", seed=0)
    s = NeighborSampler(ds.graph, (3, 3), np.random.default_rng(0))
    sub = s.sample(ds.train_idx[:5])
    sizes = sub.layer_sizes()
    assert len(sizes) == 2
    assert sub.total_edges() == sum(e for _, _, e in sizes)
    assert sub.batch_size == 5
    assert sub.num_sampled_nodes == len(sub.all_nodes)
