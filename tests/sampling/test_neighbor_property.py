"""Property-based sampler invariants on random graphs."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import csc_from_edges
from repro.sampling import NeighborSampler


@st.composite
def random_graph_and_seeds(draw):
    n = draw(st.integers(4, 60))
    m = draw(st.integers(1, 240))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    graph = csc_from_edges(src, dst, n)
    k = draw(st.integers(1, min(6, n)))
    seeds = rng.choice(n, size=k, replace=False)
    fanouts = tuple(draw(st.lists(st.integers(1, 4), min_size=1,
                                  max_size=3)))
    return graph, seeds, fanouts, seed


@settings(max_examples=120, deadline=None)
@given(random_graph_and_seeds())
def test_sampler_structural_invariants(params):
    graph, seeds, fanouts, seed = params
    sampler = NeighborSampler(graph, fanouts, np.random.default_rng(seed))
    sub = sampler.sample(seeds)

    # Seeds are the prefix of all_nodes and of every frontier.
    np.testing.assert_array_equal(sub.all_nodes[:len(sub.seeds)], sub.seeds)
    assert len(sub.layers) == len(fanouts)
    assert len(sub.hop_frontiers) == len(fanouts)

    # Node sets nest as prefixes: frontier h == all_nodes[:|frontier h|].
    for frontier in sub.hop_frontiers:
        np.testing.assert_array_equal(
            frontier, sub.all_nodes[:len(frontier)])

    # all_nodes are unique and valid ids.
    assert len(np.unique(sub.all_nodes)) == len(sub.all_nodes)
    assert sub.all_nodes.min() >= 0
    assert sub.all_nodes.max() < graph.num_nodes

    # Every sampled edge is a real in-edge; per-dst fanout respected.
    prev_size = len(sub.all_nodes)
    for layer in sub.layers:
        assert layer.num_src <= prev_size
        src_global = sub.all_nodes[layer.src_pos]
        # dst set is the prefix of the src set.
        dst_global = sub.all_nodes[layer.dst_pos]
        for u, v in zip(src_global, dst_global):
            assert u in graph.neighbors(v)
        if layer.num_edges:
            counts = np.bincount(layer.dst_pos)
            assert counts.max() <= max(fanouts)
        prev_size = layer.num_src


@settings(max_examples=60, deadline=None)
@given(random_graph_and_seeds())
def test_sampler_is_deterministic_per_stream(params):
    graph, seeds, fanouts, seed = params
    a = NeighborSampler(graph, fanouts, np.random.default_rng(seed))
    b = NeighborSampler(graph, fanouts, np.random.default_rng(seed))
    sa, sb = a.sample(seeds), b.sample(seeds)
    np.testing.assert_array_equal(sa.all_nodes, sb.all_nodes)
    for la, lb in zip(sa.layers, sb.layers):
        np.testing.assert_array_equal(la.src_pos, lb.src_pos)
        np.testing.assert_array_equal(la.dst_pos, lb.dst_pos)
