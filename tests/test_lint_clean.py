"""Tier-1 gate: the determinism linter must exit clean on src/repro.

Equivalent to ``python -m repro.lint src/repro`` returning 0.  A new
violation either gets fixed or gets an explicit
``# sim-lint: disable=DETxxx -- why`` suppression reviewed with the
change that introduced it.
"""

from pathlib import Path

from repro.analysis import lint_paths, render_text

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def test_source_tree_lints_clean():
    findings, files_scanned = lint_paths([SRC])
    assert files_scanned > 50  # the whole tree was actually scanned
    assert not findings, "\n" + render_text(findings, files_scanned)


def test_suppressions_carry_justifications():
    """Every ``sim-lint: disable`` in the tree has a ``--`` rationale."""
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        for i, line in enumerate(path.read_text().splitlines(), start=1):
            if "sim-lint: disable" in line and "--" not in line.split(
                    "sim-lint:", 1)[1]:
                offenders.append(f"{path}:{i}")
    assert not offenders, offenders
