"""Tier-1 gate: the determinism linter must exit clean on the tree.

``src/repro`` lints under the strict default profile (equivalent to
``python -m repro.lint src/repro`` returning 0); ``benchmarks/`` and
``examples/`` under the ``bench`` profile (wall-clock timing is their
job, so DET101 is off); ``tests/`` under the ``tests`` profile (exact
float asserts on known-constant timestamps and single-file race scans
are test idioms, so DET104 and RACE2xx are off).  A new violation
either gets fixed or gets an explicit
``# sim-lint: disable=DETxxx -- why`` suppression reviewed with the
change that introduced it.
"""

from pathlib import Path

from repro.analysis import PROFILES, lint_paths, render_text

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"


def _assert_clean(paths, profile="default", min_files=1):
    findings, files_scanned = lint_paths(paths)
    findings = [f for f in findings if f.code not in PROFILES[profile]]
    assert files_scanned >= min_files  # the tree was actually scanned
    assert not findings, "\n" + render_text(findings, files_scanned)


def test_source_tree_lints_clean():
    _assert_clean([SRC], min_files=50)


def test_benchmarks_lint_clean():
    _assert_clean([ROOT / "benchmarks"], profile="bench", min_files=10)


def test_examples_lint_clean():
    _assert_clean([ROOT / "examples"], profile="bench", min_files=5)


def test_tests_lint_clean():
    _assert_clean([ROOT / "tests"], profile="tests", min_files=50)


def test_suppressions_carry_justifications():
    """Every suppression/annotation in the tree has a ``--`` rationale."""
    offenders = []
    for tree in (SRC, ROOT / "benchmarks", ROOT / "examples",
                 ROOT / "tests"):
        for path in sorted(tree.rglob("*.py")):
            for i, line in enumerate(path.read_text().splitlines(),
                                     start=1):
                # Concatenated so this scanner does not trip on its
                # own marker literals.
                for marker in ("# sim-lint" + ": disable",
                               "# sim-race" + ": ordered"):
                    if marker in line and "--" not in line.split(
                            marker, 1)[1]:
                        offenders.append(f"{path}:{i}")
    assert not offenders, offenders
