"""Tests for the dataset registry, mounting, and partitioning."""

import numpy as np
import pytest

from repro.graph import (
    DATASET_REGISTRY,
    edge_buckets,
    make_dataset,
    paper_table1,
    partition_nodes,
)
from repro.graph.partition import buffer_order, pairs_covered
from repro.storage import FileCatalog


def test_registry_contains_all_table1_datasets():
    for name in ("papers100m-mini", "twitter-mini", "friendster-mini",
                 "mag240m-mini"):
        assert name in DATASET_REGISTRY
    assert DATASET_REGISTRY["mag240m-mini"].dim == 768
    assert DATASET_REGISTRY["papers100m-mini"].num_classes == 172


def test_make_tiny_dataset():
    ds = make_dataset("tiny", seed=0)
    assert ds.num_nodes == 2000
    assert ds.dim == 32
    assert ds.features.features.shape == (2000, 32)
    assert len(ds.labels) == 2000
    assert len(ds.train_idx) == 100  # 5% of 2000
    assert ds.labels.max() < ds.num_classes


def test_make_dataset_dim_override_and_scale():
    ds = make_dataset("tiny", seed=0, dim=8, scale=0.5)
    assert ds.dim == 8
    assert ds.num_nodes == 1000


def test_make_dataset_unknown_name():
    with pytest.raises(KeyError, match="unknown dataset"):
        make_dataset("nope")


def test_dataset_deterministic_per_seed():
    a = make_dataset("tiny", seed=3)
    b = make_dataset("tiny", seed=3)
    assert np.array_equal(a.graph.indices, b.graph.indices)
    assert np.array_equal(a.features.features, b.features.features)
    c = make_dataset("tiny", seed=4)
    assert not np.array_equal(a.features.features, c.features.features)


def test_mount_registers_files():
    ds = make_dataset("tiny", seed=0)
    cat = FileCatalog()
    ds.mount(cat)
    assert ds.topo_handle is not None and ds.feat_handle is not None
    assert cat.get("tiny.indices").nbytes == ds.topo_nbytes()
    assert cat.get("tiny.features").nbytes == ds.feat_nbytes()
    assert ds.feat_handle.record_nbytes == 32 * 4


def test_summary_row_and_paper_table():
    ds = make_dataset("tiny", seed=0)
    row = ds.summary_row()
    assert row["dataset"] == "tiny"
    assert row["total_mb"] == pytest.approx(
        row["topo_mb"] + row["feat_mb"], abs=0.2)
    table = paper_table1()
    assert table["papers100m"]["feat_gb"] == 53
    assert table["mag240m"]["dim"] == 768


def test_homophily_in_generated_dataset():
    ds = make_dataset("tiny", seed=0)
    g, labels = ds.graph, ds.labels
    # Sample nodes and check in-neighbor label agreement beats chance.
    rng = np.random.default_rng(0)
    nodes = rng.integers(0, g.num_nodes, 200)
    agree, total = 0, 0
    for v in nodes:
        nb = g.neighbors(v)
        agree += int((labels[nb] == labels[v]).sum())
        total += len(nb)
    assert total > 0
    assert agree / total > 2.0 / ds.num_classes + 0.3


def test_partition_nodes_balanced():
    part = partition_nodes(100, 4)
    counts = np.bincount(part)
    assert len(counts) == 4
    assert counts.max() - counts.min() <= 1
    with pytest.raises(ValueError):
        partition_nodes(10, 0)
    with pytest.raises(ValueError):
        partition_nodes(10, 11)


def test_edge_buckets_sum_to_edge_count():
    ds = make_dataset("tiny", seed=0)
    part = partition_nodes(ds.num_nodes, 4)
    counts = edge_buckets(ds.graph, part, 4)
    assert counts.sum() == ds.num_edges
    with pytest.raises(ValueError):
        edge_buckets(ds.graph, part[:-1], 4)


@pytest.mark.parametrize("P,B", [(4, 2), (6, 3), (8, 4), (5, 2), (10, 3), (3, 3)])
def test_buffer_order_covers_all_pairs(P, B):
    states = buffer_order(P, B)
    covered = pairs_covered(states)
    expected = {(i, j) for i in range(P) for j in range(i, P)}
    assert covered >= expected
    # Each state fits the buffer.
    assert all(len(set(s)) <= B for s in states)


def test_buffer_order_single_swap_between_rotation_states():
    states = buffer_order(6, 3)
    for prev, cur in zip(states, states[1:]):
        swapped_in = set(cur) - set(prev)
        assert len(swapped_in) <= 3  # rotations swap 1; block moves swap <= B


def test_buffer_order_validation():
    with pytest.raises(ValueError):
        buffer_order(4, 0)
    with pytest.raises(ValueError):
        buffer_order(4, 5)
    with pytest.raises(ValueError):
        buffer_order(4, 1)
    assert buffer_order(1, 1) == [[0]]
