"""Tests for graph generators and planted labels."""

import numpy as np
import pytest

from repro.graph import (
    csc_from_edges,
    planted_partition_edges,
    planted_features_and_labels,
    rmat_edges,
)
from repro.graph.labels import train_val_test_split


def test_rmat_shapes_and_ranges():
    rng = np.random.default_rng(0)
    src, dst = rmat_edges(1000, 5000, rng)
    assert len(src) == len(dst) == 5000
    assert src.min() >= 0 and src.max() < 1000
    assert dst.min() >= 0 and dst.max() < 1000
    assert not np.any(src == dst)  # no self loops


def test_rmat_is_skewed():
    rng = np.random.default_rng(1)
    src, dst = rmat_edges(2000, 40000, rng)
    g = csc_from_edges(src, dst, 2000, dedup=False)
    deg = g.in_degree()
    # Heavy tail: max degree far above mean.
    assert deg.max() > 8 * deg.mean()


def test_rmat_deterministic_per_seed():
    a = rmat_edges(100, 500, np.random.default_rng(5))
    b = rmat_edges(100, 500, np.random.default_rng(5))
    assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


def test_rmat_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        rmat_edges(1, 10, rng)
    with pytest.raises(ValueError):
        rmat_edges(10, -1, rng)
    with pytest.raises(ValueError):
        rmat_edges(10, 10, rng, a=0.7, b=0.3, c=0.3)


def test_planted_partition_homophily():
    rng = np.random.default_rng(0)
    src, dst, comm = planted_partition_edges(2000, 20000, 8, rng,
                                             homophily=0.9)
    same = (comm[src] == comm[dst]).mean()
    assert same > 0.8  # most edges within community
    src2, dst2, comm2 = planted_partition_edges(2000, 20000, 8, rng,
                                                homophily=0.0)
    same2 = (comm2[src2] == comm2[dst2]).mean()
    assert same2 < 0.3


def test_planted_partition_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        planted_partition_edges(10, 10, 3, rng, homophily=1.5)
    with pytest.raises(ValueError):
        planted_partition_edges(10, 10, 0, rng)
    with pytest.raises(ValueError):
        planted_partition_edges(10, 10, 11, rng)


def test_features_cluster_around_centroids():
    rng = np.random.default_rng(0)
    comm = rng.integers(0, 4, size=500)
    feats, labels = planted_features_and_labels(comm, dim=16, rng=rng,
                                                noise=0.1)
    assert feats.shape == (500, 16)
    assert feats.dtype == np.float32
    assert np.array_equal(labels, comm)
    # With tiny noise, same-class features are nearly identical.
    c0 = feats[comm == 0]
    spread = np.linalg.norm(c0 - c0.mean(axis=0), axis=1).mean()
    assert spread < 0.2


def test_features_noise_monotone():
    rng1 = np.random.default_rng(0)
    comm = rng1.integers(0, 4, size=500)
    f_lo, _ = planted_features_and_labels(comm, 16, np.random.default_rng(1), noise=0.1)
    f_hi, _ = planted_features_and_labels(comm, 16, np.random.default_rng(1), noise=2.0)

    def within_class_spread(f):
        return np.mean([
            np.linalg.norm(f[comm == c] - f[comm == c].mean(0), axis=1).mean()
            for c in range(4)
        ])

    assert within_class_spread(f_hi) > within_class_spread(f_lo)


def test_features_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        planted_features_and_labels(np.array([0]), dim=0, rng=rng)
    with pytest.raises(ValueError):
        planted_features_and_labels(np.array([0]), dim=4, rng=rng, noise=-1)


def test_split_disjoint_and_sized():
    rng = np.random.default_rng(0)
    tr, va, te = train_val_test_split(10_000, rng, train_frac=0.01)
    assert len(tr) == 100
    assert len(set(tr) & set(va)) == 0
    assert len(set(tr) & set(te)) == 0
    assert len(set(va) & set(te)) == 0
    assert np.all(np.diff(tr) > 0)  # sorted


def test_split_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        train_val_test_split(100, rng, train_frac=0.9, val_frac=0.2)
