"""Tests for dataset save/load/cache."""

import numpy as np
import pytest

from repro.graph import make_dataset
from repro.graph.io import cached_dataset, load_dataset, save_dataset


def test_save_load_roundtrip(tmp_path):
    ds = make_dataset("tiny", seed=3)
    path = str(tmp_path / "tiny.npz")
    save_dataset(ds, path)
    back = load_dataset(path)
    assert back.spec == ds.spec
    np.testing.assert_array_equal(back.graph.indptr, ds.graph.indptr)
    np.testing.assert_array_equal(back.graph.indices, ds.graph.indices)
    np.testing.assert_array_equal(back.features.features,
                                  ds.features.features)
    np.testing.assert_array_equal(back.labels, ds.labels)
    np.testing.assert_array_equal(back.train_idx, ds.train_idx)
    np.testing.assert_array_equal(back.val_idx, ds.val_idx)
    np.testing.assert_array_equal(back.test_idx, ds.test_idx)


def test_loaded_dataset_trains(tmp_path):
    from repro.core import GNNDrive, GNNDriveConfig
    from repro.core.base import TrainConfig
    from repro.machine import Machine, MachineSpec

    ds = make_dataset("tiny", seed=0)
    path = str(tmp_path / "t.npz")
    save_dataset(ds, path)
    loaded = load_dataset(path)
    m = Machine(MachineSpec.paper_scaled(host_gb=32))
    s = GNNDrive(m, loaded, TrainConfig(batch_size=20), GNNDriveConfig())
    stats = s.run_epochs(1)
    assert stats[0].num_batches > 0
    s.shutdown()


def test_cached_dataset_generates_then_hits(tmp_path):
    cache = str(tmp_path / "cache")
    a = cached_dataset("tiny", cache, seed=1, scale=0.5)
    files = list((tmp_path / "cache").glob("*.npz"))
    assert len(files) == 1
    b = cached_dataset("tiny", cache, seed=1, scale=0.5)
    np.testing.assert_array_equal(a.features.features, b.features.features)
    # Different params -> different artifact.
    cached_dataset("tiny", cache, seed=2, scale=0.5)
    assert len(list((tmp_path / "cache").glob("*.npz"))) == 2


def test_load_rejects_bad_version(tmp_path):
    import json
    ds = make_dataset("tiny", seed=0)
    path = str(tmp_path / "v.npz")
    save_dataset(ds, path)
    # Corrupt the header version.
    data = dict(np.load(path))
    header = json.loads(bytes(data["__header__"]).decode())
    header["version"] = 999
    data["__header__"] = np.frombuffer(json.dumps(header).encode(),
                                       dtype=np.uint8)
    np.savez(path, **data)
    with pytest.raises(ValueError, match="version"):
        load_dataset(path)
