"""Tests for CSC topology and builders."""

import numpy as np
import pytest

from repro.graph import CSCGraph, add_self_loops, csc_from_edges, make_undirected


def small_graph():
    # Edges: 0->1, 2->1, 1->2, 0->2, 3->0
    src = np.array([0, 2, 1, 0, 3])
    dst = np.array([1, 1, 2, 2, 0])
    return csc_from_edges(src, dst, num_nodes=4)


def test_build_and_neighbor_query():
    g = small_graph()
    assert g.num_nodes == 4
    assert g.num_edges == 5
    assert sorted(g.neighbors(1)) == [0, 2]
    assert sorted(g.neighbors(2)) == [0, 1]
    assert list(g.neighbors(0)) == [3]
    assert list(g.neighbors(3)) == []


def test_in_degree():
    g = small_graph()
    assert list(g.in_degree()) == [1, 2, 2, 0]
    assert list(g.in_degree(np.array([1, 3]))) == [2, 0]


def test_dedup_removes_duplicate_edges():
    src = np.array([0, 0, 0])
    dst = np.array([1, 1, 1])
    g = csc_from_edges(src, dst, num_nodes=2)
    assert g.num_edges == 1
    g2 = csc_from_edges(src, dst, num_nodes=2, dedup=False)
    assert g2.num_edges == 3


def test_gather_neighbors_vectorized_matches_loop():
    rng = np.random.default_rng(0)
    src = rng.integers(0, 50, 400)
    dst = rng.integers(0, 50, 400)
    g = csc_from_edges(src, dst, num_nodes=50)
    nodes = np.array([3, 17, 3, 42, 0])
    flat, counts = g.gather_neighbors(nodes)
    expected = np.concatenate([g.neighbors(v) for v in nodes]) if len(nodes) else []
    assert np.array_equal(flat, expected)
    assert np.array_equal(counts, [len(g.neighbors(v)) for v in nodes])


def test_gather_neighbors_empty():
    g = small_graph()
    flat, counts = g.gather_neighbors(np.array([3]))
    assert len(flat) == 0
    assert list(counts) == [0]


def test_touched_index_bytes():
    g = small_graph()
    spans = g.touched_index_bytes(np.array([1]), itemsize=8)
    start, end = spans[0]
    assert (end - start) == 2 * 8  # two in-neighbors


def test_validation_errors():
    with pytest.raises(ValueError):
        CSCGraph(np.array([1, 2]), np.array([0]))  # indptr[0] != 0
    with pytest.raises(ValueError):
        CSCGraph(np.array([0, 2, 1]), np.array([0, 0]))  # decreasing
    with pytest.raises(ValueError):
        CSCGraph(np.array([0, 1]), np.array([5]))  # index out of range
    with pytest.raises(ValueError):
        csc_from_edges(np.array([0]), np.array([9]), num_nodes=2)


def test_to_scipy_round_trip():
    g = small_graph()
    m = g.to_scipy()
    assert m.shape == (4, 4)
    # Column v holds in-neighbors of v.
    assert set(m[:, 1].nonzero()[0]) == {0, 2}


def test_make_undirected_doubles_edges():
    src, dst = make_undirected(np.array([0, 1]), np.array([1, 2]))
    g = csc_from_edges(src, dst, num_nodes=3)
    assert sorted(g.neighbors(0)) == [1]
    assert sorted(g.neighbors(1)) == [0, 2]


def test_add_self_loops():
    src, dst = add_self_loops(np.array([0]), np.array([1]), num_nodes=3)
    g = csc_from_edges(src, dst, num_nodes=3)
    for v in range(3):
        assert v in g.neighbors(v)
