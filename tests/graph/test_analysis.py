"""Tests for graph-analysis utilities (and dataset structural checks)."""

import numpy as np
import pytest

from repro.graph import csc_from_edges, make_dataset
from repro.graph.analysis import (
    degree_statistics,
    edge_homophily,
    gini_coefficient,
    label_chance_rate,
    neighborhood_working_set,
)


def test_degree_statistics_simple():
    g = csc_from_edges(np.array([1, 2, 3]), np.array([0, 0, 0]), 4)
    stats = degree_statistics(g)
    assert stats["mean"] == pytest.approx(0.75)
    assert stats["max"] == 3
    assert stats["zeros"] == pytest.approx(0.75)


def test_gini_uniform_is_zero():
    assert gini_coefficient(np.ones(100)) == pytest.approx(0.0, abs=1e-9)


def test_gini_concentrated_is_high():
    v = np.zeros(100)
    v[0] = 100.0
    assert gini_coefficient(v) > 0.9


def test_gini_empty_and_zero():
    assert gini_coefficient(np.array([])) == 0.0
    assert gini_coefficient(np.zeros(5)) == 0.0


def test_generated_datasets_have_skewed_degrees():
    """The regime the paper's caches rely on."""
    ds = make_dataset("papers100m-mini", seed=0, scale=0.1)
    g = gini_coefficient(ds.graph.in_degree())
    assert g > 0.3, f"degree Gini {g:.2f} too uniform for a social graph"


def test_edge_homophily_extremes():
    # All same label: homophily 1.
    g = csc_from_edges(np.array([0, 1]), np.array([1, 2]), 3)
    assert edge_homophily(g, np.zeros(3, dtype=np.int64)) == 1.0
    assert edge_homophily(g, np.array([0, 1, 2])) == 0.0


def test_generated_datasets_are_homophilous():
    ds = make_dataset("tiny", seed=0)
    h = edge_homophily(ds.graph, ds.labels)
    chance = 1.0 / ds.num_classes
    assert h > 3 * chance
    assert h < 0.95  # but not trivially clustered


def test_label_chance_rate():
    assert label_chance_rate(np.array([0, 0, 0, 1])) == pytest.approx(0.75)
    assert label_chance_rate(np.array([], dtype=np.int64)) == 0.0


def test_learned_accuracy_beats_chance_baseline():
    """The Fig. 14 curves are meaningful only if chance is low."""
    ds = make_dataset("papers100m-mini", seed=0, scale=0.1)
    assert label_chance_rate(ds.labels) < 0.05  # 172 classes


def test_neighborhood_working_set_bounds_sampler():
    from repro.sampling import NeighborSampler

    ds = make_dataset("tiny", seed=0)
    seeds = ds.train_idx[:20]
    exact = neighborhood_working_set(ds.graph, seeds, hops=2)
    sampler = NeighborSampler(ds.graph, (4, 4), np.random.default_rng(0))
    sampled = len(sampler.sample(seeds).all_nodes)
    assert sampled <= exact
    assert exact >= len(seeds)


def test_working_set_chain_graph():
    g = csc_from_edges(np.array([1, 2, 3]), np.array([0, 1, 2]), 4)
    assert neighborhood_working_set(g, np.array([0]), hops=1) == 2
    assert neighborhood_working_set(g, np.array([0]), hops=3) == 4
    assert neighborhood_working_set(g, np.array([3]), hops=5) == 1
