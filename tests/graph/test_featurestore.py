"""Unit tests for the on-SSD feature store."""

import numpy as np
import pytest

from repro.graph import FeatureStore
from repro.storage import FileCatalog


def make_store(n=10, dim=32, dtype=np.float32):
    data = np.arange(n * dim, dtype=dtype).reshape(n, dim)
    return FeatureStore(data, name="f"), data


def test_shape_accessors():
    store, data = make_store(10, 32)
    assert store.num_nodes == 10
    assert store.dim == 32
    assert store.record_nbytes == 128
    assert store.nbytes == data.nbytes


def test_io_size_sector_rounding():
    store, _ = make_store(dim=32)          # 128 B records
    assert store.io_size(direct=True) == 512
    assert store.io_size(direct=False) == 128
    store128, _ = make_store(dim=128)      # 512 B records
    assert store128.io_size(direct=True) == 512
    store129, _ = make_store(dim=129)      # 516 B records -> 1024
    assert store129.io_size(direct=True) == 1024


def test_mount_and_gather():
    store, data = make_store()
    cat = FileCatalog()
    handle = store.mount(cat)
    assert handle is store.handle
    assert handle.record_nbytes == store.record_nbytes
    got = store.gather(np.array([3, 7]))
    np.testing.assert_array_equal(got, data[[3, 7]])
    # gather returns a copy, not a view.
    got[0, 0] = -1
    assert data[3, 0] != -1


def test_rejects_non_2d():
    with pytest.raises(ValueError):
        FeatureStore(np.zeros(10))
