"""Recovery plane: retry policies, reliable submission, degradation."""

import numpy as np
import pytest

from repro.core.feature_buffer import FeatureBuffer
from repro.errors import ConfigError, OutOfMemoryError
from repro.faults import FaultInjector, FaultPlan, FaultSpec, RetryPolicy
from repro.faults.recovery import alloc_with_retry
from repro.machine import Machine, MachineSpec
from repro.simcore import Simulator
from repro.storage import SSDDevice, SSDSpec


def make_device(specs, latency=50e-6, bw=1e9, channels=4, seed=3,
                policy=None):
    sim = Simulator()
    dev = SSDDevice(sim, SSDSpec(read_latency=latency,
                                 channel_bandwidth=bw, channels=channels))
    dev.faults = FaultInjector(FaultPlan(tuple(specs), seed=seed),
                               retry_policy=policy)
    return sim, dev


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_retry_policy_delays_grow_and_cap():
    p = RetryPolicy(max_retries=6, backoff_base=200e-6,
                    backoff_factor=2.0, backoff_cap=1e-3)
    delays = [p.delay(i) for i in range(6)]
    assert delays == sorted(delays)
    assert delays[0] == pytest.approx(200e-6)
    assert delays[-1] == pytest.approx(1e-3)  # capped
    assert p.total_backoff() == pytest.approx(sum(delays))


@pytest.mark.parametrize("kwargs", [
    dict(max_retries=-1),
    dict(backoff_base=0.0),
    dict(backoff_factor=0.5),
    dict(backoff_base=1e-3, backoff_cap=1e-4),
])
def test_retry_policy_validation(kwargs):
    with pytest.raises(ConfigError):
        RetryPolicy(**kwargs)


# ----------------------------------------------------------------------
# Device-level reliable submission
# ----------------------------------------------------------------------
def test_submit_reliable_recovers_when_burst_expires():
    # Window covers the first service completion only; the first retry's
    # deferred start time falls outside it, so every request recovers.
    spec = FaultSpec("burst", "read_error", start=0.0, duration=100e-6)
    sim, dev = make_device([spec])
    done, dropped = dev.submit_reliable(np.full(4, 1000))
    led = dev.faults.ledger
    assert not dropped.any()
    assert led.injected_read == 4
    assert led.retried == 4
    assert led.recovered == 4
    assert led.dropped == 0
    assert led.backoff_time > 0
    # Recovered completions land after the backoff, not before.
    assert (done > 100e-6).all()
    led.check_invariants()


def test_submit_reliable_drops_after_budget():
    spec = FaultSpec("dead-lba", "read_error")  # p=1, always active
    policy = RetryPolicy(max_retries=2)
    sim, dev = make_device([spec], policy=policy)
    done, dropped = dev.submit_reliable(np.full(3, 1000))
    led = dev.faults.ledger
    assert dropped.all()
    assert led.retried == 6  # 3 requests x 2 rounds
    assert led.dropped == 3
    assert led.recovered == 0
    led.check_invariants()


def test_submit_reliable_no_faults_fired_is_plain_submit():
    spec = FaultSpec("never", "read_error", probability=0.0)
    sim, dev = make_device([spec])
    sizes = np.full(4, 1000)
    done, dropped = dev.submit_reliable(sizes)
    assert not dropped.any()
    assert dev.faults.ledger.retried == 0
    sim2 = Simulator()
    plain = SSDDevice(sim2, dev.spec).submit_batch(sizes)
    assert np.array_equal(done, plain)


# ----------------------------------------------------------------------
# Allocation backoff under transient pressure
# ----------------------------------------------------------------------
def make_faulty_machine(host_gb=1):
    plan = FaultPlan((FaultSpec("noop", "read_error", probability=0.0),))
    return Machine(MachineSpec.paper_scaled(host_gb=host_gb, faults=plan))


def test_alloc_with_retry_survives_transient_pressure():
    m = make_faulty_machine()
    m.host.set_fault_pressure(m.host.available)  # nothing allocatable

    def relieve(sim):
        yield sim.timeout(1e-3)
        m.host.set_fault_pressure(0)

    def work(sim):
        alloc = yield from alloc_with_retry(m, 4096, "probe")
        return alloc

    m.sim.process(relieve(m.sim), name="relieve_proc")
    m.sim.run_process(work(m.sim))
    assert m.faults.ledger.alloc_retries > 0
    assert m.host.usage_by_tag()["probe"] == 4096


def test_alloc_with_retry_reraises_on_genuine_overcommit():
    m = make_faulty_machine()
    hopeless = m.host.capacity * 2

    def work(sim):
        yield from alloc_with_retry(m, hopeless, "bulk")

    with pytest.raises(OutOfMemoryError):
        m.sim.run_process(work(m.sim))
    # The budget was spent trying.
    assert m.faults.ledger.alloc_retries == m.faults.retry_policy.max_retries


# ----------------------------------------------------------------------
# FeatureBuffer degradation
# ----------------------------------------------------------------------
def test_feature_buffer_shrink_and_restore():
    sim = Simulator()
    fb = FeatureBuffer(sim, num_slots=8, num_nodes=32, dim=2)
    nodes = np.array([1, 2, 3])
    fb.begin_batch(nodes)
    fb.allocate_slots(nodes)
    fb.finish_load(nodes)
    fb.release(nodes)  # retire to standby, mappings survive

    # Partial shrink takes the *coldest* slots — the 5 never-used ones —
    # so the delayed mappings for nodes 1..3 survive.
    assert fb.shrink_standby(5) == 5
    assert fb.disabled_slots == 5
    assert fb.free_slots == 3
    assert fb.valid[nodes].all()
    fb.check_invariants()

    # Taking the rest reaches the occupied slots: their mappings must be
    # invalidated when the slots go offline.
    assert fb.shrink_standby(3) == 3
    assert fb.disabled_slots == 8
    assert fb.free_slots == 0
    assert not fb.valid[nodes].any()
    assert (fb.slot_of[nodes] == -1).all()
    fb.check_invariants()

    assert fb.restore_standby() == 8
    assert fb.disabled_slots == 0
    assert fb.free_slots == 8
    fb.check_invariants()


def test_feature_buffer_shrink_caps_at_standby():
    sim = Simulator()
    fb = FeatureBuffer(sim, num_slots=4, num_nodes=8, dim=1)
    assert fb.shrink_standby(100) == 4
    assert fb.shrink_standby(1) == 0  # nothing left to take
    assert fb.restore_standby() == 4
    assert fb.restore_standby() == 0
