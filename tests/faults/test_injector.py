"""Injector draws, stream isolation, and ledger accounting."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.faults import FaultInjector, FaultLedger, FaultPlan, FaultSpec


def make_injector(*specs, seed=3):
    return FaultInjector(FaultPlan(tuple(specs), seed=seed))


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_draws_are_reproducible():
    spec = FaultSpec("media", "read_error", probability=0.3)
    a = make_injector(spec)
    b = make_injector(spec)
    for _ in range(5):
        ma = a.draw_read_errors(100, now=0.0)
        mb = b.draw_read_errors(100, now=0.0)
        assert np.array_equal(ma, mb)
    assert a.ledger.injected_read == b.ledger.injected_read > 0


def test_fault_streams_are_independent():
    """Spec B's draws do not move when spec A is added to the plan."""
    b = FaultSpec("b", "read_error", probability=0.3, file="feat")
    a = FaultSpec("a", "read_error", probability=0.9, file="other")
    only_b = make_injector(b)
    both = make_injector(a, b)
    # Target file 'feat': spec A never matches, but in a shared-stream
    # design its presence would still shift B's randomness.
    for _ in range(4):
        mb = only_b.draw_read_errors(64, now=0.0, handle_name="feat")
        mab = both.draw_read_errors(64, now=0.0, handle_name="feat")
        assert np.array_equal(mb, mab)


# ----------------------------------------------------------------------
# Matching rules
# ----------------------------------------------------------------------
def test_file_and_range_targeting():
    spec = FaultSpec("bad-lba", "read_error", file="feat",
                     range_start=1000, range_end=2000)
    inj = make_injector(spec)
    offs = np.array([0, 1000, 1999, 2000])
    # Wrong file: no match at all.
    assert inj.draw_read_errors(4, 0.0, handle_name="topo",
                                offsets=offs) is None
    # Range specs need offsets to attribute requests.
    assert inj.draw_read_errors(4, 0.0, handle_name="feat") is None
    mask = inj.draw_read_errors(4, 0.0, handle_name="feat", offsets=offs)
    assert mask.tolist() == [False, True, True, False]
    assert inj.ledger.injected_read == 2


def test_windowed_spec_uses_per_request_times():
    spec = FaultSpec("burst", "read_error", start=1.0, duration=1.0)
    inj = make_injector(spec)
    # Scalar gating: inactive at now=0.
    assert inj.draw_read_errors(3, now=0.0) is None
    # Per-request times: only the in-window request can fail.
    mask = inj.draw_read_errors(3, now=0.0,
                                times=np.array([0.5, 1.5, 2.5]))
    assert mask.tolist() == [False, True, False]


def test_service_multipliers_window():
    inj = make_injector(
        FaultSpec("gc", "tail_latency", factor=4.0, start=1.0,
                  duration=1.0))
    assert inj.service_multipliers(np.array([0.1, 0.2])) is None
    mult = inj.service_multipliers(np.array([0.5, 1.5]))
    assert mult.tolist() == [1.0, 4.0]
    assert inj.ledger.delayed == 1


def test_ring_errors_counted_separately():
    inj = make_injector(FaultSpec("cqe", "ring_error", probability=1.0))
    mask = inj.draw_ring_errors(5, now=0.0)
    assert mask.all()
    assert inj.ledger.injected_ring == 5
    assert inj.ledger.injected_read == 0
    assert inj.ledger.injected == 5


# ----------------------------------------------------------------------
# Ledger
# ----------------------------------------------------------------------
def test_ledger_invariants():
    led = FaultLedger()
    led.check_invariants()  # fresh ledger is balanced
    led.injected_read = 2
    led.retried = 3
    led.recovered = 4
    led.dropped = 1
    led.check_invariants()
    led.recovered = 5  # 5 + 1 > 2 + 3
    with pytest.raises(SimulationError):
        led.check_invariants()


def test_ledger_rejects_negative_counters():
    led = FaultLedger()
    led.dropped = -1
    with pytest.raises(SimulationError):
        led.check_invariants()
    led = FaultLedger()
    led.backoff_time = -0.5
    with pytest.raises(SimulationError):
        led.check_invariants()


def test_ledger_as_dict_covers_all_counters():
    led = FaultLedger()
    d = led.as_dict()
    for name in FaultLedger.COUNTERS:
        assert name in d
    assert d["injected"] == 0 and d["backoff_time"] == 0.0
