"""Fault determinism and end-to-end chaos survival.

Three system-level properties:

1. Same plan + seed twice => bit-identical traces and stats.
2. The empty plan is a true no-op: traces match ``faults=None`` exactly.
3. Every system survives the default chaos plan (injected > 0,
   recovered > 0, sanitizer clean) — the same check the
   ``python -m repro.bench faults`` artifact gates on.
"""

import pytest

from repro.bench.faults import check_system_under_faults
from repro.bench.runner import SYSTEM_NAMES, get_dataset, run_system
from repro.core.base import TrainConfig
from repro.faults import EMPTY_PLAN, default_chaos_plan

pytestmark = pytest.mark.faults


def _trace(system, plan):
    res = run_system(system, get_dataset("tiny"), TrainConfig(), epochs=2,
                     warmup_epochs=0, keep_machine=True, sanitize=True,
                     sanitize_trace=True, fault_plan=plan)
    assert res.ok, res.error
    return res.machine.sanitizer.trace_digest(), res.stats


@pytest.mark.parametrize("system", ["gnndrive-gpu", "ginex"])
def test_same_plan_same_seed_is_bit_reproducible(system):
    plan = default_chaos_plan()
    digest_a, stats_a = _trace(system, plan)
    digest_b, stats_b = _trace(system, plan)
    assert digest_a == digest_b
    assert [repr(s) for s in stats_a] == [repr(s) for s in stats_b]
    assert any(s.faults.get("injected", 0) > 0 for s in stats_a)


@pytest.mark.parametrize("system", SYSTEM_NAMES)
def test_empty_plan_is_bit_identical_to_no_faults(system):
    digest_empty, stats_empty = _trace(system, EMPTY_PLAN)
    digest_none, stats_none = _trace(system, None)
    assert digest_empty == digest_none
    assert [repr(s) for s in stats_empty] == [repr(s) for s in stats_none]
    assert all(not s.faults for s in stats_empty)


@pytest.mark.parametrize("system", SYSTEM_NAMES)
def test_system_survives_default_chaos_plan(system):
    report = check_system_under_faults(system, default_chaos_plan())
    assert report["status"] == "ok", report.get("error")
    assert report["clean"], report["findings"]
    assert report["ledger"]["injected"] > 0
    assert report["ledger"]["recovered"] > 0
    assert report["survived"]
