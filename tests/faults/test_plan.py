"""Fault-plan validation, window math, and JSON round-trips."""

import json

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.faults import (
    EMPTY_PLAN,
    FaultPlan,
    FaultSpec,
    default_chaos_plan,
    load_plan,
)


# ----------------------------------------------------------------------
# FaultSpec validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kwargs", [
    dict(fault_id="", kind="read_error"),
    dict(fault_id="x", kind="cosmic_ray"),
    dict(fault_id="x", kind="read_error", probability=1.5),
    dict(fault_id="x", kind="read_error", probability=-0.1),
    dict(fault_id="x", kind="tail_latency", factor=0.0),
    dict(fault_id="x", kind="tail_latency", factor=float("nan")),
    dict(fault_id="x", kind="read_error", start=-1.0),
    dict(fault_id="x", kind="read_error", duration=0.0),
    dict(fault_id="x", kind="read_error", period=-1.0),
    dict(fault_id="x", kind="read_error", duration=2.0, period=1.0),
    dict(fault_id="x", kind="read_error", repeats=-1),
    dict(fault_id="x", kind="mem_pressure", duration=1.0),  # no sizing
    dict(fault_id="x", kind="mem_pressure", duration=1.0,
         fraction=0.1, nbytes=100),  # both sizings
    dict(fault_id="x", kind="mem_pressure", fraction=0.1),  # inf duration
    dict(fault_id="x", kind="mem_pressure", duration=1.0, fraction=1.0),
    dict(fault_id="x", kind="read_error", range_start=0),  # half a range
    dict(fault_id="x", kind="read_error", range_start=10, range_end=10),
    dict(fault_id="x", kind="tail_latency", range_start=0, range_end=10),
    dict(fault_id="x", kind="tail_latency", file="feat"),
])
def test_invalid_specs_raise_config_error(kwargs):
    with pytest.raises(ConfigError):
        FaultSpec(**kwargs)


def test_valid_targeted_spec():
    s = FaultSpec("bad-lba", "read_error", file="features",
                  range_start=4096, range_end=8192)
    assert s.probability == 1.0  # targeted specs default to always-fail


def test_plan_rejects_duplicates_and_non_specs():
    a = FaultSpec("a", "read_error")
    with pytest.raises(ConfigError):
        FaultPlan((a, FaultSpec("a", "ring_error")))
    with pytest.raises(ConfigError):
        FaultPlan((a, "not-a-spec"))


# ----------------------------------------------------------------------
# Window math
# ----------------------------------------------------------------------
def test_one_shot_window():
    s = FaultSpec("w", "throttle", factor=2.0, start=1.0, duration=0.5)
    assert not s.active(0.9)
    assert s.active(1.0)
    assert s.active(1.49)
    assert not s.active(1.5)
    assert not s.active(100.0)


def test_periodic_window_with_repeats():
    s = FaultSpec("w", "throttle", factor=2.0, start=0.0, duration=0.1,
                  period=1.0, repeats=2)
    assert s.active(0.05) and s.active(1.05)
    assert not s.active(0.5) and not s.active(1.5)
    assert not s.active(2.05)  # third repetition is beyond the bound


def test_active_mask_matches_scalar_active():
    s = FaultSpec("w", "read_error", start=0.3, duration=0.2, period=0.7,
                  repeats=3)
    times = np.linspace(0.0, 3.0, 301)
    mask = s.active_mask(times)
    assert mask.tolist() == [s.active(float(t)) for t in times]


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
def test_round_trip_equality(tmp_path):
    plan = default_chaos_plan()
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    path = tmp_path / "plan.json"
    plan.save(str(path))
    assert load_plan(str(path)) == plan


def test_to_dict_omits_defaults():
    plan = FaultPlan((FaultSpec("a", "read_error", probability=0.5),))
    spec = plan.to_dict()["specs"][0]
    assert spec == {"fault_id": "a", "kind": "read_error",
                    "probability": 0.5}
    # In particular the infinite default duration never hits JSON.
    assert "Infinity" not in json.dumps(plan.to_dict())


def test_from_dict_accepts_id_shorthand():
    plan = FaultPlan.from_dict(
        {"specs": [{"id": "oops", "kind": "ring_error"}]})
    assert plan.specs[0].fault_id == "oops"


@pytest.mark.parametrize("data", [
    "not-a-dict",
    {"specs": [], "extra": 1},
    {"specs": ["not-a-spec"]},
    {"specs": [{"fault_id": "a", "kind": "read_error", "bogus": 1}]},
    {"specs": [{"kind": "read_error"}]},  # missing fault_id
])
def test_from_dict_rejects_malformed(data):
    with pytest.raises(ConfigError):
        FaultPlan.from_dict(data)


def test_load_plan_rejects_invalid_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{nope")
    with pytest.raises(ConfigError):
        load_plan(str(path))


def test_empty_plan():
    assert EMPTY_PLAN.is_empty
    assert len(EMPTY_PLAN) == 0
    assert not default_chaos_plan().is_empty
