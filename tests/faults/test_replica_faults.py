"""Replica fault kinds: spec validation, episodes, draws, ledger."""

import os

import pytest

from repro.errors import ConfigError, SimulationError
from repro.faults import (
    REPLICA_KINDS,
    FaultInjector,
    FaultLedger,
    FaultPlan,
    FaultSpec,
    default_replica_chaos_plan,
    load_plan,
)

EXAMPLE_PLAN = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples", "replica_chaos_plan.json")


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kwargs", [
    # replica targeting is exclusive to replica_* kinds
    dict(fault_id="x", kind="read_error", replica=0),
    dict(fault_id="x", kind="tail_latency", factor=2.0, replica=1),
    # replica index must be -1 (any) or a concrete >= 0
    dict(fault_id="x", kind="replica_crash", duration=1.0, replica=-2),
    # replica episodes need a finite duration (the recovery point)
    dict(fault_id="x", kind="replica_crash"),
    dict(fault_id="x", kind="replica_hang"),
    # slowdown must actually slow down
    dict(fault_id="x", kind="replica_slow", duration=1.0, factor=1.0),
    dict(fault_id="x", kind="replica_slow", duration=1.0, factor=0.5),
])
def test_invalid_replica_specs_raise(kwargs):
    with pytest.raises(ConfigError):
        FaultSpec(**kwargs)


def test_valid_replica_specs():
    crash = FaultSpec("c", "replica_crash", replica=1, duration=0.01)
    assert crash.replica == 1
    anyrep = FaultSpec("s", "replica_slow", factor=4.0, duration=0.01)
    assert anyrep.replica == -1          # untargeted: drawn per episode


def test_replica_kinds_registered():
    assert set(REPLICA_KINDS) == {"replica_crash", "replica_hang",
                                  "replica_slow"}


# ----------------------------------------------------------------------
# Episode math
# ----------------------------------------------------------------------
def test_episode_start_one_shot():
    s = FaultSpec("c", "replica_crash", duration=0.01, start=0.5)
    assert s.episode_start(0) == 0.5
    assert s.episode_start(1) is None
    with pytest.raises(ValueError):
        s.episode_start(-1)


def test_episode_start_periodic():
    s = FaultSpec("c", "replica_crash", duration=0.01, start=0.5,
                  period=0.2, repeats=3)
    assert s.episode_start(0) == 0.5
    assert s.episode_start(2) == pytest.approx(0.9)
    assert s.episode_start(3) is None    # beyond the repeat bound


def test_episode_start_unbounded_periodic():
    s = FaultSpec("c", "replica_hang", duration=0.01, period=1.0)
    assert s.episode_start(10) == pytest.approx(10.0)


# ----------------------------------------------------------------------
# Injector draws
# ----------------------------------------------------------------------
def test_draw_replica_targeted_and_any():
    plan = default_replica_chaos_plan()
    inj = FaultInjector(plan)
    targeted = next(s for s in plan.specs if s.replica >= 0)
    assert inj.draw_replica(targeted, 8) == targeted.replica
    # Targeting wraps rather than pointing off the end of the fleet.
    assert inj.draw_replica(targeted, 1) == 0
    anyrep = next(s for s in plan.specs if s.replica == -1)
    draws = {inj.draw_replica(anyrep, 4) for _ in range(64)}
    assert draws <= set(range(4)) and len(draws) > 1
    with pytest.raises(SimulationError):
        inj.draw_replica(anyrep, 0)


def test_draw_replica_deterministic_per_stream():
    plan = default_replica_chaos_plan()
    spec = next(s for s in plan.specs if s.replica == -1)
    a = [FaultInjector(plan).draw_replica(spec, 4) for _ in range(8)]
    b = [FaultInjector(plan).draw_replica(spec, 4) for _ in range(8)]
    assert a == b                        # fresh injector, same stream


def test_draw_episode_respects_probability():
    always = FaultSpec("a", "replica_crash", duration=0.01)
    inj = FaultInjector(FaultPlan((always,)))
    assert all(inj.draw_episode(always) for _ in range(16))


def test_replica_specs_split():
    plan = default_replica_chaos_plan()
    inj = FaultInjector(plan)
    assert len(inj.replica_specs) == 3
    assert all(s.kind in REPLICA_KINDS for s in inj.replica_specs)
    assert plan.has_replica_faults


# ----------------------------------------------------------------------
# Ledger counters and invariants
# ----------------------------------------------------------------------
def test_ledger_replica_counters_start_zero():
    led = FaultLedger()
    d = led.as_dict()
    for key in ("injected_crash", "injected_hang", "injected_slow",
                "replica_restarts", "failovers", "orphaned",
                "orphan_failed", "hedges", "hedge_wins",
                "hedge_discards", "ejections", "readmissions",
                "brownouts", "replica_down_time", "brownout_time"):
        assert d[key] == 0
    led.check_invariants()


@pytest.mark.parametrize("counters", [
    {"replica_restarts": 1},                       # restart w/o crash
    {"ejections": 1, "readmissions": 2},           # readmit w/o eject
    {"hedges": 1, "hedge_wins": 1, "hedge_discards": 1},
    {"orphaned": 1, "failovers": 1, "orphan_failed": 1},
])
def test_ledger_imbalance_raises(counters):
    led = FaultLedger()
    for key, val in counters.items():
        setattr(led, key, val)
    with pytest.raises(SimulationError):
        led.check_invariants()


def test_ledger_balanced_replica_story():
    led = FaultLedger()
    led.injected_crash = 2
    led.replica_restarts = 2
    led.ejections = 2
    led.readmissions = 2
    led.orphaned = 3
    led.failovers = 2
    led.orphan_failed = 1
    led.hedges = 4
    led.hedge_wins = 2
    led.hedge_discards = 2
    led.check_invariants()
    assert led.injected_replica == 2


# ----------------------------------------------------------------------
# JSON round-trip (incl. the shipped example plan)
# ----------------------------------------------------------------------
def test_replica_plan_round_trip(tmp_path):
    plan = default_replica_chaos_plan()
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    path = tmp_path / "rplan.json"
    plan.save(str(path))
    assert load_plan(str(path)) == plan


def test_replica_field_omitted_when_untargeted():
    plan = FaultPlan((
        FaultSpec("s", "replica_slow", factor=2.0, duration=0.01),
        FaultSpec("c", "replica_crash", replica=2, duration=0.01),
    ))
    slow, crash = plan.to_dict()["specs"]
    assert "replica" not in slow
    assert crash["replica"] == 2


def test_shipped_example_plan_loads():
    plan = load_plan(EXAMPLE_PLAN)
    assert plan == default_replica_chaos_plan()
