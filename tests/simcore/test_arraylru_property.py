"""Property tests: ArrayLRU against the OrderedDict it replaced.

The contract (module docstring of ``repro.simcore.lru``):

* ``touch(keys)``   == ``move_to_end`` members, insert non-members MRU;
* ``add(keys)``     == ``setdefault`` — members keep their position;
* ``discard(keys)`` == ``pop(k, None)``;
* ``popleft(k)``    == k x ``popitem(last=False)`` (LRU first).

Traces are random interleavings of all four batch operations; after
every step the full LRU order, membership and structural invariants
must match the reference exactly.  A tiny initial log capacity forces
frequent compactions, so the lazy append-log machinery is exercised,
not just the fast path.
"""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.simcore import ArrayLRU

NUM_KEYS = 24


class ReferenceLRU:
    """OrderedDict with the exact batch semantics ArrayLRU promises."""

    def __init__(self):
        self.d = OrderedDict()

    def touch(self, keys):
        for k in keys:
            if k in self.d:
                self.d.move_to_end(k)
            else:
                self.d[k] = None

    def add(self, keys):
        for k in keys:
            self.d.setdefault(k)

    def discard(self, keys):
        return sum(self.d.pop(k, "miss") is None for k in keys)

    def popleft(self, k):
        k = min(k, len(self.d))
        return [self.d.popitem(last=False)[0] for _ in range(k)]

    def order(self):
        return list(self.d)


key_batch = st.lists(st.integers(0, NUM_KEYS - 1), min_size=0,
                     max_size=NUM_KEYS, unique=True)
operation = st.one_of(
    st.tuples(st.just("touch"), key_batch),
    st.tuples(st.just("add"), key_batch),
    st.tuples(st.just("discard"), key_batch),
    st.tuples(st.just("popleft"), st.integers(0, NUM_KEYS)),
)


@settings(max_examples=200, deadline=None)
@given(st.lists(operation, min_size=1, max_size=60))
def test_arraylru_matches_ordereddict(ops):
    lru = ArrayLRU(NUM_KEYS, log_capacity=16)   # tiny: compact often
    ref = ReferenceLRU()
    for op, arg in ops:
        if op == "popleft":
            got = lru.popleft(arg).tolist()
            want = ref.popleft(arg)
            assert got == want, f"popleft({arg}) diverged"
        else:
            keys = np.asarray(arg, dtype=np.int64)
            if op == "discard":
                assert lru.discard(keys) == ref.discard(arg)
            else:
                getattr(lru, op)(keys)
                getattr(ref, op)(arg)
        # Full-state equivalence after every operation.
        assert lru.order().tolist() == ref.order()
        assert len(lru) == len(ref.d)
        all_keys = np.arange(NUM_KEYS, dtype=np.int64)
        want_mask = np.array([k in ref.d for k in range(NUM_KEYS)])
        assert np.array_equal(lru.member_mask(all_keys), want_mask)
        lru.check_invariants()


@settings(max_examples=60, deadline=None)
@given(st.lists(operation, min_size=1, max_size=30),
       st.integers(NUM_KEYS, 3 * NUM_KEYS))
def test_arraylru_keyspace_growth(ops, grown):
    """ensure_keys mid-trace preserves order and membership."""
    lru = ArrayLRU(NUM_KEYS, log_capacity=16)
    ref = ReferenceLRU()
    half = len(ops) // 2
    for i, (op, arg) in enumerate(ops):
        if i == half:
            before = lru.order().tolist()
            lru.ensure_keys(grown)
            assert lru.num_keys >= grown
            assert lru.order().tolist() == before
        if op == "popleft":
            assert lru.popleft(arg).tolist() == ref.popleft(arg)
        elif op == "discard":
            assert lru.discard(np.asarray(arg, dtype=np.int64)) \
                == ref.discard(arg)
        else:
            getattr(lru, op)(np.asarray(arg, dtype=np.int64))
            getattr(ref, op)(arg)
    assert lru.order().tolist() == ref.order()
    lru.check_invariants()


def test_arraylru_iter_and_contains():
    lru = ArrayLRU(8)
    lru.add(np.array([3, 1, 5]))
    lru.touch(np.array([1]))
    assert list(lru) == [3, 5, 1]
    assert 1 in lru and 5 in lru and 0 not in lru
    lru.clear()
    assert len(lru) == 0 and list(lru) == []
