"""Tests for the Chrome-trace span exporter."""

import json

import pytest

from repro.simcore.tracing import SpanTracer


def test_span_and_instant_roundtrip():
    t = SpanTracer("test")
    t.span("b0", "sample", "sampler0", 0.0, 0.5, epoch=0)
    t.span("b0", "train", "trainer", 0.5, 0.7)
    t.instant("oom", "trainer", 0.6, what="gpu")
    events = t.to_chrome_events()
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == 2
    assert spans[0]["ts"] == 0.0
    assert spans[0]["dur"] == pytest.approx(0.5e6)
    assert spans[0]["args"] == {"epoch": 0}
    instants = [e for e in events if e["ph"] == "i"]
    assert len(instants) == 1
    meta = [e for e in events if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta}
    assert {"sampler0", "trainer", "test"} <= names


def test_invalid_span_rejected():
    t = SpanTracer()
    with pytest.raises(ValueError):
        t.span("x", "c", "t", 1.0, 0.5)


def test_json_is_loadable(tmp_path):
    t = SpanTracer()
    t.span("a", "c", "t0", 0.0, 1.0)
    path = tmp_path / "trace.json"
    t.write(str(path))
    doc = json.loads(path.read_text())
    assert "traceEvents" in doc
    assert doc["displayTimeUnit"] == "ms"


def test_track_queries_and_totals():
    t = SpanTracer()
    t.span("a", "extract", "e0", 0.0, 1.0)
    t.span("b", "extract", "e1", 0.5, 1.0)
    t.span("c", "train", "tr", 1.0, 1.25)
    assert t.tracks() == ["e0", "e1", "tr"]
    assert len(t.spans_on("e0")) == 1
    assert t.total_time("extract") == pytest.approx(1.5)
    assert t.total_time("train") == pytest.approx(0.25)


def test_gnndrive_emits_spans(tmp_path):
    from repro.core import GNNDrive, GNNDriveConfig
    from repro.core.base import TrainConfig
    from repro.graph import make_dataset
    from repro.machine import Machine, MachineSpec

    ds = make_dataset("tiny", seed=0)
    m = Machine(MachineSpec.paper_scaled(host_gb=32))
    tracer = m.enable_tracing("gnndrive-tiny")
    sysm = GNNDrive(m, ds, TrainConfig(batch_size=20), GNNDriveConfig())
    stats = sysm.run_epochs(1)
    sysm.shutdown()

    cats = {s.category for s in tracer.spans}
    assert cats == {"sample", "extract", "train", "release"}
    # One span of each category per batch.
    n = stats[0].num_batches
    for cat in cats:
        assert sum(1 for s in tracer.spans if s.category == cat) == n
    # The pipeline overlaps: summed extract busy time matches the stats.
    assert tracer.total_time("extract") == pytest.approx(
        stats[0].stages.extract, rel=1e-6)
    # Spans on one actor track never overlap (actors are sequential).
    for track in tracer.tracks():
        spans = sorted(tracer.spans_on(track), key=lambda s: s.start)
        for a, b in zip(spans, spans[1:]):
            assert a.end <= b.start + 1e-12
    # Export round-trips.
    path = tmp_path / "t.json"
    tracer.write(str(path))
    assert json.loads(path.read_text())["traceEvents"]
