"""Tests for AllOf / AnyOf condition events."""

import pytest

from repro.simcore import AllOf, AnyOf, Simulator


def test_allof_waits_for_slowest():
    sim = Simulator()

    def proc(sim):
        evs = [sim.timeout(d, value=d) for d in (1.0, 3.0, 2.0)]
        results = yield AllOf(sim, evs)
        return (sim.now, sorted(results.values()))

    now, values = sim.run_process(proc(sim))
    assert now == 3.0
    assert values == [1.0, 2.0, 3.0]


def test_anyof_returns_on_fastest():
    sim = Simulator()

    def proc(sim):
        evs = [sim.timeout(d, value=d) for d in (5.0, 1.0, 3.0)]
        results = yield AnyOf(sim, evs)
        return (sim.now, list(results.values()))

    now, values = sim.run_process(proc(sim))
    assert now == 1.0
    assert values == [1.0]


def test_allof_empty_list_fires_immediately():
    sim = Simulator()

    def proc(sim):
        results = yield AllOf(sim, [])
        return (sim.now, results)

    assert sim.run_process(proc(sim)) == (0.0, {})


def test_allof_with_already_processed_events():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")
    sim.run()

    def proc(sim):
        late = sim.timeout(2.0, value="late")
        results = yield AllOf(sim, [ev, late])
        return sorted(results.values())

    assert sim.run_process(proc(sim)) == ["early", "late"]


def test_allof_failure_propagates():
    sim = Simulator()
    bad = sim.event()

    def firer(sim):
        yield sim.timeout(1)
        bad.fail(OSError("disk error"))

    def proc(sim):
        with pytest.raises(OSError):
            yield AllOf(sim, [bad, sim.timeout(10)])
        return sim.now

    sim.process(firer(sim))
    assert sim.run_process(proc(sim)) == 1.0


def test_anyof_mixed_values_collects_all_fired():
    sim = Simulator()

    def proc(sim):
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(1.0, value="b")
        results = yield AnyOf(sim, [a, b])
        # Both fire at t=1 but AnyOf triggers on the first; only events
        # already triggered at that moment are collected.
        return set(results.values())

    assert "a" in sim.run_process(proc(sim))
