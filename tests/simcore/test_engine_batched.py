"""Batched-engine surface: cohort dispatch, vectorized arming, fused
completion delivery, and the tolerance-free run horizon.

The bit-identity of the batched engine against the seed heap loop is
covered by the golden traces and the hypothesis property tests
(``test_engine_property.py``); these tests pin the *new* API surface
and the cohort-semantics edge cases directly.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simcore import Simulator, Store
from repro.simcore.refengine import Simulator as RefSimulator


# ----------------------------------------------------------------------
# Vectorized arming
# ----------------------------------------------------------------------
def test_timeouts_batch_fires_in_delay_order():
    sim = Simulator()
    seen = []
    ts = sim.timeouts([3.0, 1.0, 2.0], values=["c", "a", "b"])
    for t in ts:
        t.callbacks.append(lambda ev: seen.append(ev.value))
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 3.0


def test_timeouts_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeouts([1.0, -0.5])


def test_timeout_cancel_suppresses_dispatch():
    sim = Simulator()
    fired = []
    keep, drop = sim.timeouts([1.0, 1.0])
    keep.callbacks.append(lambda ev: fired.append("keep"))
    drop.callbacks.append(lambda ev: fired.append("drop"))
    assert drop.cancel() is True
    assert drop.cancel() is False      # second cancel is a no-op
    sim.run()
    assert fired == ["keep"]
    assert keep.cancel() is False      # already processed


def test_schedule_wakeups_cohort_counts():
    sim = Simulator()
    cohort = sim.schedule_wakeups(np.array([1.0, 1.0, 2.0, 2.0, 2.0]))
    assert cohort.count == 5
    sim.run()
    assert cohort.fired == 5
    assert sim.now == 2.0
    assert sim.events_dispatched == 5


def test_wakeup_cohort_cancel_is_lazy_and_indexed():
    sim = Simulator()
    cohort = sim.schedule_wakeups(np.full(4, 1.0))
    assert cohort.cancel(1) is True
    assert cohort.cancel(1) is False   # already tombstoned
    with pytest.raises(IndexError):
        cohort.cancel(7)
    sim.run()
    assert cohort.fired == 3
    assert sim.events_dispatched == 3


def test_all_cancelled_cohort_never_advances_clock():
    sim = Simulator()
    cohort = sim.schedule_wakeups(np.full(3, 5.0))
    for i in range(3):
        cohort.cancel(i)
    sim.timeout(1.0)
    sim.run()
    # The tombstoned wakeups at t=5 must not drag the clock forward.
    assert sim.now == 1.0
    assert cohort.fired == 0


# ----------------------------------------------------------------------
# Cohort dispatch
# ----------------------------------------------------------------------
def test_step_cohort_retires_one_timestamp():
    sim = Simulator()
    sim.timeouts([1.0, 1.0, 1.0, 2.0])
    assert sim.step_cohort() == 3
    assert sim.now == 1.0
    assert sim.step_cohort() == 1
    assert sim.now == 2.0
    with pytest.raises(SimulationError):
        sim.step_cohort()


def test_step_cohort_includes_same_time_cascades():
    sim = Simulator()
    fired = []

    def chain(sim):
        yield sim.timeout(1.0)
        fired.append("a")
        yield sim.timeout(0.0)     # same-timestamp cascade
        fired.append("b")

    sim.process(chain(sim))
    sim.step_cohort()              # boot event at t=0
    n = sim.step_cohort()          # everything at t=1, cascade included
    assert fired == ["a", "b"]
    assert n >= 2
    assert sim.now == 1.0


def test_step_on_only_tombstones_raises_empty():
    sim = Simulator()
    t = sim.timeout(1.0)
    t.cancel()
    with pytest.raises(SimulationError, match="empty schedule"):
        sim.step()


# ----------------------------------------------------------------------
# run(until): tolerance-free, cohort-atomic horizon
# ----------------------------------------------------------------------
def test_run_until_dispatches_cohort_exactly_at_horizon():
    """Regression: the horizon check must never split a same-timestamp
    cohort — including events scheduled *during* dispatch at the
    horizon itself."""
    sim = Simulator()
    fired = []

    def at_horizon(sim):
        yield sim.timeout(1.0)
        fired.append("first")
        # Armed while dispatching the cohort at exactly until=1.0; the
        # seed loop dispatches it (same timestamp), so must we.
        yield sim.timeout(0.0)
        fired.append("second")

    sim.process(at_horizon(sim))
    sim.timeout(1.5)               # beyond the horizon: must not fire
    sim.run(until=1.0)
    assert fired == ["first", "second"]
    assert sim.now == 1.0


def test_run_until_is_tolerance_free():
    # 0.1 + 0.2 != 0.3 in binary; the horizon comparison must be exact,
    # with no epsilon that would leak events past the horizon.
    sim = Simulator()
    fired = []
    t = sim.timeout(0.1 + 0.2)
    t.callbacks.append(lambda ev: fired.append("past"))
    sim.run(until=0.3)
    assert fired == []             # 0.30000000000000004 > 0.3
    assert sim.now == 0.3
    sim.run()
    assert fired == ["past"]


def test_run_until_matches_reference_engine():
    for until in (0.5, 1.0, 1.5, 2.0):
        sims = (Simulator(), RefSimulator())
        for sim in sims:
            sim.timeouts([1.0, 1.0, 2.0])
            sim.schedule_wakeups(np.array([0.5, 1.0, 1.75]))
            sim.run(until=until)
        assert sims[0].now == sims[1].now
        assert sims[0].events_dispatched == sims[1].events_dispatched


# ----------------------------------------------------------------------
# Fused delivery building blocks
# ----------------------------------------------------------------------
def test_wakeup_spans_interleave_with_real_events():
    """Interleaved logical cohorts and real timeouts must retire in
    global time order whether the bulk sweep or the cohort path runs."""
    sim = Simulator()
    order = []
    a = sim.schedule_wakeups(np.array([1.0, 3.0, 5.0]), kind="Cqe")
    b = sim.schedule_wakeups(np.array([2.0, 4.0, 6.0]), kind="Arrival")
    mid = sim.timeout(3.5)
    mid.callbacks.append(lambda ev: order.append(("real", sim.now)))
    sim.run()
    assert a.fired == 3 and b.fired == 3
    assert order == [("real", 3.5)]
    assert sim.now == 6.0
    assert sim.events_dispatched == 7


def test_put_many_matches_per_event_reference():
    """Store.put_many must produce the identical event stream the seed's
    one-put-per-item loop produced (same seq numbers, same order)."""
    outcomes = []
    for sim in (Simulator(), RefSimulator()):
        store = Store(sim, capacity=4)
        got = []

        def consumer(sim=sim, store=store, got=got):
            for _ in range(8):
                item = yield store.get()
                got.append(item)

        def producer(sim=sim, store=store):
            yield sim.timeout(1.0)
            store.put_many(range(8))   # blocks at capacity, then drains

        procs = [sim.process(consumer()), sim.process(producer())]
        sim.run()
        assert not any(p.is_alive for p in procs)
        outcomes.append((got, sim.now, sim.events_dispatched))
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][0] == list(range(8))
