"""Property tests: the batched engine against the frozen reference.

Hypothesis generates random schedules — mixed arm shapes, heavy
timestamp ties, cancellations, same-timestamp process cascades — and
runs each one on the batched engine and on the per-event reference
engine (:mod:`repro.simcore.refengine`), both under strict, tracing
sanitizers.  The engines must produce the *identical* event stream:
same (when, priority, seq, kind, name) tuples in the same order, same
rolling SHA-256 digest, same final clock and dispatch count.

This is the engine-level analogue of the golden-trace gate: the golden
scenario pins seven production systems; these properties pin the whole
schedule space the engines can express.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.sanitizer import SimSanitizer
from repro.simcore import Simulator
from repro.simcore.refengine import Simulator as RefSimulator

#: Tie-heavy delay pool: repeated values make same-timestamp cohorts
#: (the interesting dispatch case) the common case, not the rare one.
DELAYS = st.sampled_from([0.0, 0.25, 0.5, 0.5, 1.0, 1.0, 1.0, 1.5, 2.0])

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("timeout"), DELAYS),
        st.tuples(st.just("timeouts"),
                  st.lists(DELAYS, min_size=1, max_size=6)),
        st.tuples(st.just("wakeups"),
                  st.lists(DELAYS, min_size=1, max_size=8)),
        st.tuples(st.just("proc"),
                  st.lists(DELAYS, min_size=1, max_size=4)),
        st.tuples(st.just("event"), st.just(None)),
        st.tuples(st.just("cancel"), st.integers(0, 1_000_000)),
        st.tuples(st.just("wcancel"), st.integers(0, 1_000_000)),
    ),
    min_size=1, max_size=25)


def _run_schedule(sim, ops, until=None):
    """Interpret *ops* identically on either engine, then run."""
    timeouts, cohorts = [], []
    for kind, arg in ops:
        if kind == "timeout":
            timeouts.append(sim.timeout(arg))
        elif kind == "timeouts":
            timeouts.extend(sim.timeouts(np.array(arg)))
        elif kind == "wakeups":
            cohorts.append(sim.schedule_wakeups(np.array(arg)))
        elif kind == "proc":
            def body(sim=sim, delays=tuple(arg)):
                for d in delays:
                    yield sim.timeout(d)
                    # Arm during dispatch: with d == 0.0 this is a
                    # same-timestamp cascade inside an open cohort.
                    sim.timeout(d)
            sim.process(body())
        elif kind == "event":
            sim.event().succeed(None)
        elif kind == "cancel":
            if timeouts:
                timeouts[arg % len(timeouts)].cancel()
        elif kind == "wcancel":
            if cohorts:
                co = cohorts[arg % len(cohorts)]
                co.cancel(arg % co.count)
    sim.run(until=until)


def _trace(sim_cls, ops, until=None):
    sim = sim_cls()
    san = SimSanitizer(strict=True, trace=True)
    sim.sanitizer = san
    _run_schedule(sim, ops, until=until)
    return sim, san


@settings(max_examples=60, deadline=None)
@given(ops=OPS)
def test_random_schedules_are_bit_identical(ops):
    ref_sim, ref_san = _trace(RefSimulator, ops)
    bat_sim, bat_san = _trace(Simulator, ops)
    assert SimSanitizer.first_divergence(ref_san, bat_san) is None
    assert ref_san.trace_digest() == bat_san.trace_digest()
    assert ref_sim.now == bat_sim.now
    assert ref_sim.events_dispatched == bat_sim.events_dispatched
    assert ref_san.clean and bat_san.clean


@settings(max_examples=40, deadline=None)
@given(ops=OPS, until=st.sampled_from([0.0, 0.25, 0.5, 1.0, 1.75, 3.0]))
def test_run_until_horizon_is_bit_identical(ops, until):
    """The tolerance-free horizon: both engines must dispatch exactly
    the same events (cohorts at the horizon included) and land on
    ``now == until``."""
    ref_sim, ref_san = _trace(RefSimulator, ops, until=until)
    bat_sim, bat_san = _trace(Simulator, ops, until=until)
    assert SimSanitizer.first_divergence(ref_san, bat_san) is None
    assert ref_san.trace_digest() == bat_san.trace_digest()
    assert ref_sim.now == bat_sim.now == until
    assert ref_sim.events_dispatched == bat_sim.events_dispatched


@settings(max_examples=30, deadline=None)
@given(ops=OPS)
def test_unsanitized_run_matches_sanitized_outcome(ops):
    """The sanitizer-off fast paths (logical spans, bulk sweeps) must
    leave the same observable state as fully-observed dispatch."""
    fast = Simulator()
    _run_schedule(fast, ops)
    slow, _ = _trace(Simulator, ops)
    assert fast.now == slow.now
    assert fast.events_dispatched == slow.events_dispatched
