"""Tests for utilization recorders and traces."""

import pytest

from repro.errors import SimulationError
from repro.simcore import IntervalRecorder, Simulator, TraceRecorder, UtilizationProbe


def run_busy_pattern(sim, rec, pattern):
    """Drive the recorder through (start, stop) busy intervals."""

    def proc(sim):
        t = 0.0
        for start, stop in pattern:
            if start > t:
                yield sim.timeout(start - t)
            rec.enter()
            yield sim.timeout(stop - start)
            rec.exit()
            t = stop

    sim.run_process(proc(sim))


def test_single_interval_utilization():
    sim = Simulator()
    rec = IntervalRecorder(sim, capacity=1)
    run_busy_pattern(sim, rec, [(2.0, 5.0)])
    sim.run(until=10.0)
    assert rec.utilization(0.0, 10.0) == pytest.approx(0.3)


def test_utilization_window_slicing():
    sim = Simulator()
    rec = IntervalRecorder(sim, capacity=1)
    run_busy_pattern(sim, rec, [(0.0, 4.0), (6.0, 8.0)])
    sim.run(until=10.0)
    assert rec.utilization(0.0, 4.0) == pytest.approx(1.0)
    assert rec.utilization(4.0, 6.0) == pytest.approx(0.0)
    assert rec.utilization(5.0, 7.0) == pytest.approx(0.5)
    assert rec.utilization(0.0, 10.0) == pytest.approx(0.6)


def test_overlapping_claims_clip_at_capacity():
    sim = Simulator()
    rec = IntervalRecorder(sim, capacity=2)

    def claim(sim, start, stop):
        yield sim.timeout(start)
        rec.enter()
        yield sim.timeout(stop - start)
        rec.exit()

    procs = [sim.process(claim(sim, s, e)) for s, e in [(0, 4), (0, 4), (0, 4)]]
    sim.drain(procs)
    sim.run(until=4.0)
    # 3 claims but capacity 2: utilization saturates at 1.0.
    assert rec.utilization(0.0, 4.0) == pytest.approx(1.0)


def test_partial_capacity_utilization():
    sim = Simulator()
    rec = IntervalRecorder(sim, capacity=4)
    run_busy_pattern(sim, rec, [(0.0, 10.0)])
    assert rec.utilization(0.0, 10.0) == pytest.approx(0.25)


def test_exit_idle_recorder_raises():
    sim = Simulator()
    rec = IntervalRecorder(sim)
    with pytest.raises(SimulationError):
        rec.exit()


def test_series_buckets():
    sim = Simulator()
    rec = IntervalRecorder(sim, capacity=1)
    run_busy_pattern(sim, rec, [(0.0, 5.0)])
    sim.run(until=10.0)
    series = rec.series(0.0, 10.0, buckets=10)
    assert series[:5] == pytest.approx([1.0] * 5)
    assert series[5:] == pytest.approx([0.0] * 5)


def test_series_validates_buckets():
    sim = Simulator()
    rec = IntervalRecorder(sim)
    with pytest.raises(ValueError):
        rec.series(0, 1, buckets=0)


def test_trace_recorder_roundtrip():
    tr = TraceRecorder()
    tr.record("loss", 0.0, 2.5)
    tr.record("loss", 1.0, 1.5)
    tr.record("acc", 1.0, 0.4)
    assert tr.get("loss") == [(0.0, 2.5), (1.0, 1.5)]
    assert tr.last("loss") == 1.5
    assert tr.last("missing", default=-1) == -1
    assert set(tr.names()) == {"loss", "acc"}


def test_probe_snapshot_shapes():
    sim = Simulator()
    probe = UtilizationProbe(sim, cpu_capacity=2, gpu_capacity=1)

    def work(sim):
        probe.cpu.enter()
        yield sim.timeout(2)
        probe.cpu.exit()
        probe.gpu.enter()
        yield sim.timeout(2)
        probe.gpu.exit()

    sim.run_process(work(sim))
    snap = probe.snapshot(0.0, 4.0, buckets=4)
    assert len(snap["cpu"]) == 4
    assert snap["cpu"][0] == pytest.approx(0.5)  # 1 of 2 cores busy
    assert snap["gpu"][2] == pytest.approx(1.0)
    summary = probe.summary(0.0, 4.0)
    assert summary["gpu"] == pytest.approx(0.5)
