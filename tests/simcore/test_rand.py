"""Tests for named random streams."""

import numpy as np

from repro.simcore import RandomStreams


def test_same_seed_same_name_same_draws():
    a = RandomStreams(seed=7).get("sampling").random(5)
    b = RandomStreams(seed=7).get("sampling").random(5)
    assert np.array_equal(a, b)


def test_different_names_are_independent():
    rs = RandomStreams(seed=7)
    a = rs.get("sampling").random(5)
    b = rs.get("features").random(5)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RandomStreams(seed=1).get("x").random(5)
    b = RandomStreams(seed=2).get("x").random(5)
    assert not np.array_equal(a, b)


def test_stream_is_cached_and_stateful():
    rs = RandomStreams(seed=0)
    first = rs.get("s").random(3)
    second = rs.get("s").random(3)
    assert not np.array_equal(first, second)  # same stream advances


def test_fork_indexed_streams():
    rs = RandomStreams(seed=0)
    a = rs.fork("sampler", 0).random(4)
    b = rs.fork("sampler", 1).random(4)
    assert not np.array_equal(a, b)


def test_reset_restores_initial_state():
    rs = RandomStreams(seed=3)
    first = rs.get("s").random(3)
    rs.reset()
    again = rs.get("s").random(3)
    assert np.array_equal(first, again)
