"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import InterruptError, SimulationError
from repro.simcore import Simulator


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.5)
        return sim.now

    assert sim.run_process(proc(sim)) == 2.5
    assert sim.now == 2.5


def test_timeout_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_process_return_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1)
        return "payload"

    assert sim.run_process(proc(sim)) == "payload"


def test_sequential_timeouts_accumulate():
    sim = Simulator()
    marks = []

    def proc(sim):
        for d in (1.0, 2.0, 3.0):
            yield sim.timeout(d)
            marks.append(sim.now)

    sim.run_process(proc(sim))
    assert marks == [1.0, 3.0, 6.0]


def test_two_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def ticker(sim, name, period, n):
        for _ in range(n):
            yield sim.timeout(period)
            order.append((sim.now, name))

    a = sim.process(ticker(sim, "a", 1.0, 3))
    b = sim.process(ticker(sim, "b", 1.5, 2))
    sim.drain([a, b])
    # At t=3.0 both fire; b's timeout was scheduled earlier (at t=1.5) so
    # the deterministic seq-tiebreak runs it first.
    assert order == [(1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b"), (3.0, "a")]


def test_manual_event_hand_off_between_processes():
    sim = Simulator()
    ev = sim.event()
    seen = []

    def waiter(sim):
        value = yield ev
        seen.append((sim.now, value))

    def firer(sim):
        yield sim.timeout(4)
        ev.succeed("hello")

    sim.drain([sim.process(waiter(sim)), sim.process(firer(sim))])
    assert seen == [(4.0, "hello")]


def test_waiting_on_already_processed_event_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(42)
    sim.run()  # event gets processed

    def late(sim):
        value = yield ev
        return (sim.now, value)

    assert sim.run_process(late(sim)) == (0.0, 42)


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        _ = sim.event().value


def test_failed_event_throws_into_waiter():
    sim = Simulator()
    ev = sim.event()

    def waiter(sim):
        try:
            yield ev
        except RuntimeError as exc:
            return f"caught {exc}"

    def firer(sim):
        yield sim.timeout(1)
        ev.fail(RuntimeError("boom"))

    p = sim.process(waiter(sim))
    sim.process(firer(sim))
    sim.run()
    assert p.value == "caught boom"


def test_uncaught_process_exception_propagates_from_drain():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1)
        raise ValueError("exploded")

    p = sim.process(bad(sim))
    with pytest.raises(ValueError, match="exploded"):
        sim.drain([p])


def test_yielding_non_event_raises_inside_process():
    sim = Simulator()

    def bad(sim):
        yield 123  # sim-lint: disable=DET107 -- deliberate bad yield under test

    p = sim.process(bad(sim))
    with pytest.raises(SimulationError):
        sim.drain([p])


def test_interrupt_throws_interrupt_error():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100)
        except InterruptError as exc:
            log.append((sim.now, exc.cause))

    def interrupter(sim, victim):
        yield sim.timeout(3)
        victim.interrupt("wake up")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [(3.0, "wake up")]


def test_interrupted_wait_does_not_double_resume():
    sim = Simulator()
    resumes = []

    def sleeper(sim):
        try:
            yield sim.timeout(5)
            resumes.append("timeout")
        except InterruptError:
            resumes.append("interrupt")
        # Keep living past the original timeout's firing time.
        yield sim.timeout(10)
        resumes.append("late")

    def interrupter(sim, victim):
        yield sim.timeout(1)
        victim.interrupt()

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert resumes == ["interrupt", "late"]


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)

    p = sim.process(quick(sim))
    sim.run()
    p.interrupt()  # should not raise
    sim.run()


def test_run_until_advances_clock_to_horizon():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(100)

    sim.process(proc(sim))
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_run_process_detects_deadlock():
    sim = Simulator()

    def stuck(sim):
        yield sim.event()  # never triggered

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(stuck(sim))


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    procs = [sim.process(proc(sim, i)) for i in range(5)]
    sim.drain(procs)
    assert order == [0, 1, 2, 3, 4]


def test_nested_subprocess_wait():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(2)
        return "child-done"

    def parent(sim):
        result = yield sim.process(child(sim))
        return (sim.now, result)

    assert sim.run_process(parent(sim)) == (2.0, "child-done")


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_active_process_visible_during_step():
    sim = Simulator()
    captured = []

    def proc(sim):
        captured.append(sim.active_process)
        yield sim.timeout(1)

    p = sim.process(proc(sim))
    sim.run()
    assert captured == [p]
    assert sim.active_process is None
