"""Property tests for the FIFO-pipeline completion arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simcore.flow import pipeline_completion


def scalar_reference(starts, svcs, initial):
    done = []
    free = initial
    for s, c in zip(starts, svcs):
        free = max(s, free) + c
        done.append(free)
    return np.array(done)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(st.floats(0, 100), min_size=1, max_size=40),
    st.floats(0.01, 10),
    st.floats(0, 50),
)
def test_constant_service_matches_scalar_recurrence(starts, svc, initial):
    starts = np.array(starts)
    fast = pipeline_completion(starts, svc, initial_free=initial)
    ref = scalar_reference(starts, [svc] * len(starts), initial)
    np.testing.assert_allclose(fast, ref, rtol=1e-9, atol=1e-9)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.tuples(st.floats(0, 100), st.floats(0.01, 10)),
             min_size=1, max_size=30),
    st.floats(0, 50),
)
def test_variable_service_matches_scalar_recurrence(pairs, initial):
    starts = np.array([p[0] for p in pairs])
    svcs = np.array([p[1] for p in pairs])
    got = pipeline_completion(starts, svcs, initial_free=initial)
    ref = scalar_reference(starts, svcs, initial)
    np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-9)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(0, 100), min_size=2, max_size=40),
       st.floats(0.01, 5))
def test_completions_monotone_nondecreasing(starts, svc):
    done = pipeline_completion(np.array(starts), svc)
    assert np.all(np.diff(done) >= -1e-9)


def test_completion_after_start_plus_service():
    starts = np.array([5.0, 0.0, 10.0])
    done = pipeline_completion(starts, 2.0)
    assert np.all(done >= starts + 2.0 - 1e-12)


def test_empty_input():
    assert len(pipeline_completion(np.empty(0), 1.0)) == 0


def test_idle_pipeline_is_pure_delay():
    starts = np.array([0.0, 10.0, 20.0])
    done = pipeline_completion(starts, 1.0)
    np.testing.assert_allclose(done, starts + 1.0)


def test_saturated_pipeline_serialises():
    starts = np.zeros(5)
    done = pipeline_completion(starts, 2.0, initial_free=1.0)
    np.testing.assert_allclose(done, [3, 5, 7, 9, 11])
