"""Tests for Resource and Store."""

import pytest

from repro.errors import SimulationError
from repro.simcore import Resource, Simulator, Store


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    grants = []

    def worker(sim, res, tag, hold):
        yield res.request()
        grants.append((sim.now, tag))
        yield sim.timeout(hold)
        res.release()

    procs = [sim.process(worker(sim, res, i, 2.0)) for i in range(4)]
    sim.drain(procs)
    # First two run at t=0; the next two must wait for releases at t=2.
    assert grants == [(0.0, 0), (0.0, 1), (2.0, 2), (2.0, 3)]


def test_resource_fifo_ordering_of_waiters():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(sim, res, tag):
        yield res.request()
        order.append(tag)
        yield sim.timeout(1)
        res.release()

    procs = [sim.process(worker(sim, res, i)) for i in range(5)]
    sim.drain(procs)
    assert order == [0, 1, 2, 3, 4]


def test_resource_release_idle_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_availability_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=3)
    res.request()
    res.request()
    assert res.available == 1
    assert res.in_use == 2
    res.release()
    assert res.available == 2


def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim, capacity=10)
    out = []

    def producer(sim, store):
        for i in range(3):
            yield store.put(i)
            yield sim.timeout(1)

    def consumer(sim, store):
        for _ in range(3):
            item = yield store.get()
            out.append((sim.now, item))

    sim.drain([sim.process(producer(sim, store)), sim.process(consumer(sim, store))])
    assert [i for _, i in out] == [0, 1, 2]


def test_store_put_blocks_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    times = []

    def producer(sim, store):
        for i in range(3):
            yield store.put(i)
            times.append(sim.now)

    def consumer(sim, store):
        while True:
            yield sim.timeout(5)
            yield store.get()

    p = sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run(until=100)
    # puts: t=0 (fills), t=5 (after first get), t=10.
    assert times == [0.0, 5.0, 10.0]
    assert not p.is_alive


def test_store_get_blocks_when_empty():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get()
        got.append((sim.now, item))

    def producer(sim, store):
        yield sim.timeout(7)
        yield store.put("x")

    sim.drain([sim.process(consumer(sim, store)), sim.process(producer(sim, store))])
    assert got == [(7.0, "x")]


def test_store_direct_handoff_preserves_order():
    sim = Simulator()
    store = Store(sim, capacity=1)
    got = []

    def consumer(sim, store, tag):
        item = yield store.get()
        got.append((tag, item))

    def producer(sim, store):
        yield sim.timeout(1)
        for i in range(3):
            yield store.put(i)

    consumers = [sim.process(consumer(sim, store, t)) for t in "abc"]
    sim.drain(consumers + [sim.process(producer(sim, store))])
    assert got == [("a", 0), ("b", 1), ("c", 2)]


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() == (False, None)
    store.put("item")
    ok, item = store.try_get()
    assert ok and item == "item"
    assert len(store) == 0


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_store_unbounded_never_blocks_put():
    sim = Simulator()
    store = Store(sim)
    for i in range(1000):
        ev = store.put(i)
        assert ev.triggered
    assert len(store) == 1000
