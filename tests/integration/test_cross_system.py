"""Cross-system integration: all five systems on the same workload.

These are the repo's end-to-end guarantees: every system trains the
same model family on the same data with real gradients, results are
deterministic per seed, and the paper's qualitative ordering holds on
a small-but-contended configuration.
"""

import numpy as np
import pytest

from repro.bench.runner import SYSTEM_NAMES, get_dataset, run_system
from repro.core.base import TrainConfig

SCALE = 0.15  # extra-small for integration-test speed


@pytest.fixture(scope="module")
def ds():
    return get_dataset("papers100m-mini", scale=SCALE)


@pytest.fixture(scope="module")
def tc():
    return TrainConfig(model_kind="sage", batch_size=10)


@pytest.fixture(scope="module")
def results(ds, tc):
    out = {}
    for system in SYSTEM_NAMES:
        out[system] = run_system(system, ds, tc, epochs=2, warmup_epochs=1,
                                 data_scale=SCALE, eval_every=1)
    return out


def test_all_systems_complete(results):
    for system, r in results.items():
        assert r.ok, f"{system} failed: {r.status} {r.error}"


def test_all_systems_learn(results):
    for system, r in results.items():
        losses = [s.loss for s in r.stats]
        assert losses[-1] < losses[0] * 1.1, f"{system} not learning"
        assert r.stats[-1].val_acc > 0.0


def test_gnndrive_wins_under_contention(results):
    g = results["gnndrive-gpu"].epoch_time
    assert results["pyg+"].epoch_time > 1.5 * g
    assert results["ginex"].epoch_time > g
    assert results["mariusgnn"].epoch_time > g


def test_cpu_variant_slower_but_close_for_sage(results):
    g = results["gnndrive-gpu"].epoch_time
    c = results["gnndrive-cpu"].epoch_time
    assert 1.0 <= c / g < 5.0


def test_determinism_same_seed(ds, tc):
    a = run_system("gnndrive-gpu", ds, tc, epochs=1, warmup_epochs=1,
                   data_scale=SCALE)
    b = run_system("gnndrive-gpu", ds, tc, epochs=1, warmup_epochs=1,
                   data_scale=SCALE)
    assert a.epoch_time == b.epoch_time
    assert [s.loss for s in a.stats] == [s.loss for s in b.stats]


def test_different_seed_changes_trajectory(ds, tc):
    a = run_system("gnndrive-gpu", ds, tc, epochs=1, warmup_epochs=0,
                   data_scale=SCALE)
    b = run_system("gnndrive-gpu", ds, tc.with_(seed=7), epochs=1,
                   warmup_epochs=0, data_scale=SCALE)
    assert [s.loss for s in a.stats] != [s.loss for s in b.stats]


def test_shared_dataset_is_not_mutated(ds, tc):
    before = ds.features.features.copy()
    run_system("mariusgnn", ds, tc, epochs=1, warmup_epochs=0,
               data_scale=SCALE)
    np.testing.assert_array_equal(ds.features.features, before)


def test_epoch_stats_fields_populated(results):
    for system, r in results.items():
        last = r.stats[-1]
        assert last.num_batches > 0
        assert last.bytes_read >= 0
        assert last.epoch_time > 0
        assert np.isfinite(last.loss)
