"""Smoke the full dataset registry through GNNDrive at small scale."""

import pytest

from repro.bench.runner import get_dataset, run_system
from repro.core.base import TrainConfig

SCALE = 0.1


#: mag240m's 768-dim model parameters are scale-invariant and need a
#: larger scaled GPU (see docs/scaling-methodology.md, "what cannot
#: scale").
@pytest.mark.parametrize("name,scale", [
    ("papers100m-mini", SCALE),
    ("twitter-mini", SCALE),
    ("friendster-mini", SCALE),
    ("mag240m-mini", 0.25),
])
def test_gnndrive_trains_every_registry_dataset(name, scale):
    ds = get_dataset(name, scale=scale)
    res = run_system("gnndrive-gpu", ds, TrainConfig(batch_size=10),
                     epochs=1, warmup_epochs=0, data_scale=scale)
    assert res.ok, f"{name}: {res.status} {res.error}"
    assert res.stats[0].num_batches > 0
    assert res.stats[0].loaded_nodes > 0


@pytest.mark.parametrize("model", ["sage", "gcn", "gat"])
def test_gnndrive_trains_every_model(model):
    ds = get_dataset("papers100m-mini", scale=SCALE)
    res = run_system("gnndrive-gpu", ds, TrainConfig(model_kind=model,
                                                     batch_size=10),
                     epochs=1, warmup_epochs=0, data_scale=SCALE,
                     eval_every=1)
    assert res.ok
    assert res.stats[0].val_acc >= 0.0
