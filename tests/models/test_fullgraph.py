"""Tests for whole-graph (full-batch) training (§6 future work)."""

import numpy as np
import pytest

from repro.graph import csc_from_edges, make_dataset
from repro.models import Adam, make_model
from repro.models.fullgraph import (
    full_graph_activation_bytes,
    full_graph_subgraph,
)
from repro.models.train import train_step
from repro.tensor import Tensor


def test_full_graph_subgraph_structure():
    ds = make_dataset("tiny", seed=0)
    sub = full_graph_subgraph(ds.graph, num_layers=2, train_idx=ds.train_idx)
    assert sub.num_sampled_nodes == ds.num_nodes
    assert len(sub.seeds) == len(ds.train_idx)
    assert set(sub.seeds) == set(ds.train_idx)
    # Prefix layout holds.
    np.testing.assert_array_equal(sub.all_nodes[:len(sub.seeds)], sub.seeds)
    # Inner layer carries every edge; outer only edges into targets.
    assert sub.layers[0].num_edges == ds.num_edges
    assert sub.layers[-1].num_dst == len(ds.train_idx)
    assert sub.layers[-1].num_edges <= ds.num_edges


def test_full_graph_edges_are_real():
    g = csc_from_edges(np.array([1, 2, 0]), np.array([0, 0, 2]), 3)
    sub = full_graph_subgraph(g, num_layers=1)
    src_global = sub.all_nodes[sub.layers[0].src_pos]
    dst_global = sub.all_nodes[sub.layers[0].dst_pos]
    for u, v in zip(src_global, dst_global):
        assert u in g.neighbors(v)
    assert sub.layers[0].num_edges == 3


def test_full_batch_training_converges():
    """Full-batch GCN on the whole tiny graph reaches high train acc."""
    ds = make_dataset("tiny", seed=0)
    sub = full_graph_subgraph(ds.graph, num_layers=2,
                              train_idx=ds.train_idx)
    model = make_model("gcn", ds.dim, 32, ds.num_classes, 2, seed=0)
    opt = Adam(model.parameters(), lr=1e-2)
    feats = ds.features.gather(sub.all_nodes)
    losses = []
    for _ in range(30):
        loss, correct = train_step(model, opt, feats, sub, ds.labels)
        losses.append(loss)
    assert losses[-1] < losses[0] * 0.5
    assert correct / len(sub.seeds) > 0.5


def test_full_batch_matches_every_model_kind():
    ds = make_dataset("tiny", seed=0)
    sub = full_graph_subgraph(ds.graph, num_layers=2,
                              train_idx=ds.train_idx[:50])
    feats = ds.features.gather(sub.all_nodes)
    for kind in ("sage", "gcn", "gat"):
        model = make_model(kind, ds.dim, 16, ds.num_classes, 2, seed=0)
        logits = model(Tensor(feats), sub)
        assert logits.data.shape == (50, ds.num_classes)
        assert np.isfinite(logits.data).all()


def test_activation_bytes_demonstrate_the_section6_problem():
    """papers100m-mini's full-batch activations exceed the scaled GPU —
    the reason whole-graph training is future work."""
    from repro.machine import MachineSpec

    dims = [128, 256, 256, 172]
    need = full_graph_activation_bytes(111_000, dims)
    gpu = MachineSpec.paper_scaled(host_gb=32).gpu_capacity
    assert need > gpu
    # The tiny graph fits comfortably.
    assert full_graph_activation_bytes(2000, [32, 16, 8]) < gpu


def test_full_graph_validation():
    ds = make_dataset("tiny", seed=0)
    with pytest.raises(ValueError):
        full_graph_subgraph(ds.graph, num_layers=0)


def test_full_graph_all_nodes_as_targets():
    g = csc_from_edges(np.array([1]), np.array([0]), 3)
    sub = full_graph_subgraph(g, num_layers=1)
    assert len(sub.seeds) == 3
    np.testing.assert_array_equal(sub.seeds, np.arange(3))
