"""Tests for the shared training/evaluation helpers."""

import numpy as np
import pytest

from repro.graph import make_dataset
from repro.models import Adam, make_model
from repro.models.train import accuracy, evaluate, forward_backward, predict
from repro.sampling import NeighborSampler


@pytest.fixture(scope="module")
def setup():
    ds = make_dataset("tiny", seed=0)
    sampler = NeighborSampler(ds.graph, (3, 3), np.random.default_rng(0))
    model = make_model("sage", ds.dim, 16, ds.num_classes, 2, seed=0)
    return ds, sampler, model


def test_predict_returns_class_ids(setup):
    ds, sampler, model = setup
    sub = sampler.sample(ds.train_idx[:10])
    preds = predict(model, ds.features.gather(sub.all_nodes), sub)
    assert preds.shape == (len(sub.seeds),)
    assert preds.dtype.kind == "i"
    assert (0 <= preds).all() and (preds < ds.num_classes).all()


def test_predict_builds_no_tape(setup):
    ds, sampler, model = setup
    sub = sampler.sample(ds.train_idx[:10])
    predict(model, ds.features.gather(sub.all_nodes), sub)
    for p in model.parameters():
        assert p.grad is None or True  # no backward happened
    assert not model.training  # eval mode left on


def test_accuracy_empty_set_raises(setup):
    ds, sampler, model = setup
    with pytest.raises(ValueError, match="empty"):
        accuracy(model, sampler, ds.features.features,
                 np.array([], dtype=np.int64), ds.labels)


def test_evaluate_alias_matches_accuracy(setup):
    ds, sampler, model = setup
    nodes = ds.val_idx[:50]
    # Same RNG state for both calls: clone samplers.
    s1 = NeighborSampler(ds.graph, (3, 3), np.random.default_rng(9))
    s2 = NeighborSampler(ds.graph, (3, 3), np.random.default_rng(9))
    a = accuracy(model, s1, ds.features.features, nodes, ds.labels)
    b = evaluate(model, s2, ds.features.features, nodes, ds.labels)
    assert a == b


def test_accuracy_feature_fetch_hook(setup):
    ds, sampler, model = setup
    calls = []

    def fetch(ids):
        calls.append(len(ids))
        return ds.features.features[ids]

    acc = accuracy(model, sampler, None, ds.val_idx[:20], ds.labels,
                   batch_size=10, feature_fetch=fetch)
    assert calls, "custom fetch not used"
    assert 0.0 <= acc <= 1.0


def test_forward_backward_leaves_grads_for_sync(setup):
    ds, sampler, model = setup
    sub = sampler.sample(ds.train_idx[:10])
    loss, correct = forward_backward(
        model, ds.features.gather(sub.all_nodes), sub, ds.labels)
    assert np.isfinite(loss)
    assert 0 <= correct <= len(sub.seeds)
    assert any(p.grad is not None for p in model.parameters())
