"""Tests for optimizers and the compute-cost model."""

import numpy as np
import pytest

from repro.models import (
    Adam,
    ComputeCostModel,
    CPU_XEON,
    DeviceProfile,
    GPU_K80,
    GPU_RTX3090,
    SGD,
)
from repro.models.module import Parameter
from repro.models.costmodel import layer_work


def test_sgd_minimises_quadratic():
    p = Parameter(np.array([[5.0]], dtype=np.float32))
    opt = SGD([p], lr=0.1)
    from repro.tensor import matmul
    for _ in range(100):
        opt.zero_grad()
        loss = matmul(p, p)  # p^2 for 1x1
        loss.backward(np.ones((1, 1), dtype=np.float32))
        opt.step()
    assert abs(p.data[0, 0]) < 1e-2


def test_sgd_momentum_faster_than_plain():
    def run(momentum):
        p = Parameter(np.array([[5.0]], dtype=np.float32))
        opt = SGD([p], lr=0.02, momentum=momentum)
        from repro.tensor import matmul
        for _ in range(50):
            opt.zero_grad()
            loss = matmul(p, p)
            loss.backward(np.ones((1, 1), dtype=np.float32))
            opt.step()
        return abs(p.data[0, 0])

    assert run(0.9) < run(0.0)


def test_adam_minimises_quadratic():
    p = Parameter(np.array([[5.0]], dtype=np.float32))
    opt = Adam([p], lr=0.3)
    from repro.tensor import matmul
    for _ in range(200):
        opt.zero_grad()
        loss = matmul(p, p)
        loss.backward(np.ones((1, 1), dtype=np.float32))
        opt.step()
    assert abs(p.data[0, 0]) < 0.05


def test_optimizer_skips_gradless_params():
    p1 = Parameter(np.ones(2, dtype=np.float32))
    p2 = Parameter(np.ones(2, dtype=np.float32))
    p1.grad = np.ones(2, dtype=np.float32)
    opt = SGD([p1, p2], lr=1.0)
    opt.step()
    assert np.allclose(p1.data, 0.0)
    assert np.allclose(p2.data, 1.0)


def test_optimizer_validation():
    p = Parameter(np.ones(1))
    with pytest.raises(ValueError):
        SGD([p], lr=0)
    with pytest.raises(ValueError):
        SGD([], lr=0.1)
    with pytest.raises(ValueError):
        SGD([p], lr=0.1, momentum=1.5)
    with pytest.raises(ValueError):
        Adam([p], betas=(1.0, 0.9))


def test_weight_decay_shrinks_params():
    p = Parameter(np.ones(3, dtype=np.float32) * 10)
    p.grad = np.zeros(3, dtype=np.float32)
    opt = SGD([p], lr=0.1, weight_decay=0.5)
    opt.step()
    assert np.all(p.data < 10)


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
LAYERS = [(1110, 110, 1100), (110, 10, 100)]
DIMS = [128, 256, 172]


def test_gpu_faster_than_cpu():
    gpu = ComputeCostModel(GPU_RTX3090)
    cpu = ComputeCostModel(CPU_XEON)
    for kind in ("sage", "gcn", "gat"):
        t_gpu = gpu.train_step_time(kind, LAYERS, DIMS)
        t_cpu = cpu.train_step_time(kind, LAYERS, DIMS)
        assert t_cpu > t_gpu


def test_gat_cpu_penalty_is_disproportionate():
    """§5.1: CPU/GPU gap much larger for GAT than for SAGE."""
    gpu = ComputeCostModel(GPU_RTX3090)
    cpu = ComputeCostModel(CPU_XEON)
    ratio_sage = (cpu.train_step_time("sage", LAYERS, DIMS)
                  / gpu.train_step_time("sage", LAYERS, DIMS))
    ratio_gat = (cpu.train_step_time("gat", LAYERS, DIMS)
                 / gpu.train_step_time("gat", LAYERS, DIMS))
    assert ratio_gat > 1.5 * ratio_sage


def test_k80_slower_than_rtx3090():
    k80 = ComputeCostModel(GPU_K80)
    rtx = ComputeCostModel(GPU_RTX3090)
    assert (k80.train_step_time("sage", LAYERS, DIMS)
            > rtx.train_step_time("sage", LAYERS, DIMS))


def test_train_step_is_three_forwards():
    m = ComputeCostModel(GPU_RTX3090)
    f = m.forward_time("sage", LAYERS, DIMS)
    assert m.train_step_time("sage", LAYERS, DIMS) == pytest.approx(3 * f)


def test_layer_work_scales_with_edges_and_dims():
    d1, e1 = layer_work("sage", 100, 10, 1000, 64, 64)
    d2, e2 = layer_work("sage", 100, 10, 2000, 64, 64)
    assert e2 == pytest.approx(2 * e1)
    d3, _ = layer_work("sage", 100, 10, 1000, 128, 64)
    assert d3 == pytest.approx(2 * d1)
    with pytest.raises(ValueError):
        layer_work("mlp", 1, 1, 1, 1, 1)


def test_sample_compute_time_linear():
    m = ComputeCostModel(CPU_XEON)
    t1 = m.sample_compute_time(100, 1000)
    t2 = m.sample_compute_time(200, 2000)
    assert t2 == pytest.approx(2 * t1)


def test_dims_mismatch_raises():
    m = ComputeCostModel(GPU_RTX3090)
    with pytest.raises(ValueError):
        m.forward_time("sage", LAYERS, [128, 256])


def test_model_dims_helper():
    dims = ComputeCostModel.model_dims("sage", 128, 256, 172, 3)
    assert dims == [128, 256, 256, 172]


def test_device_profile_validation():
    with pytest.raises(ValueError):
        DeviceProfile("bad", dense_flops=0, edge_flops=1, layer_overhead=0,
                      is_gpu=True)
    with pytest.raises(ValueError):
        DeviceProfile("bad", dense_flops=1, edge_flops=1, layer_overhead=-1,
                      is_gpu=True)
