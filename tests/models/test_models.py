"""Tests for the three GNN models: shapes, gradients, learning."""

import numpy as np
import pytest

from repro.graph import make_dataset
from repro.models import GAT, GCN, GraphSAGE, SGD, Adam, make_model, default_fanouts
from repro.models.train import accuracy, train_step
from repro.sampling import NeighborSampler
from repro.tensor import Tensor, softmax_cross_entropy


@pytest.fixture(scope="module")
def tiny():
    ds = make_dataset("tiny", seed=0)
    sampler = NeighborSampler(ds.graph, (4, 4), np.random.default_rng(1))
    sub = sampler.sample(ds.train_idx[:16])
    return ds, sampler, sub


@pytest.mark.parametrize("kind", ["sage", "gcn", "gat"])
def test_forward_output_shape(tiny, kind):
    ds, _, sub = tiny
    model = make_model(kind, ds.dim, 16, ds.num_classes, num_layers=2, seed=0)
    feats = ds.features.gather(sub.all_nodes)
    logits = model(Tensor(feats), sub)
    assert logits.data.shape == (len(sub.seeds), ds.num_classes)
    assert np.isfinite(logits.data).all()


@pytest.mark.parametrize("kind", ["sage", "gcn", "gat"])
def test_all_parameters_receive_gradients(tiny, kind):
    ds, _, sub = tiny
    model = make_model(kind, ds.dim, 16, ds.num_classes, num_layers=2, seed=0)
    feats = ds.features.gather(sub.all_nodes)
    logits = model(Tensor(feats), sub)
    loss = softmax_cross_entropy(logits, ds.labels[sub.seeds])
    loss.backward()
    for name, p in model.named_parameters():
        assert p.grad is not None, f"no grad for {name}"
        assert np.isfinite(p.grad).all(), f"non-finite grad for {name}"
        # At least the top layers must receive signal.
    grads = [np.abs(p.grad).max() for p in model.parameters()]
    assert max(grads) > 0


@pytest.mark.parametrize("kind", ["sage", "gcn", "gat"])
def test_training_reduces_loss(tiny, kind):
    ds, sampler, _ = tiny
    model = make_model(kind, ds.dim, 16, ds.num_classes, num_layers=2, seed=0)
    opt = Adam(model.parameters(), lr=5e-3)
    rng = np.random.default_rng(0)
    losses = []
    for step in range(30):
        seeds = rng.choice(ds.train_idx, size=32, replace=False)
        sub = sampler.sample(seeds)
        feats = ds.features.gather(sub.all_nodes)
        loss, _ = train_step(model, opt, feats, sub, ds.labels)
        losses.append(loss)
    assert np.mean(losses[-5:]) < np.mean(losses[:5]) * 0.8


def test_sage_learns_above_chance(tiny):
    ds, sampler, _ = tiny
    model = make_model("sage", ds.dim, 32, ds.num_classes, num_layers=2, seed=0)
    opt = Adam(model.parameters(), lr=5e-3)
    rng = np.random.default_rng(0)
    for _ in range(60):
        seeds = rng.choice(ds.train_idx, size=50, replace=False)
        sub = sampler.sample(seeds)
        loss, _ = train_step(model, opt, ds.features.gather(sub.all_nodes),
                             sub, ds.labels)
    acc = accuracy(model, sampler, ds.features.features, ds.val_idx,
                   ds.labels, batch_size=100)
    assert acc > 3.0 / ds.num_classes  # far above chance (1/8)


def test_layer_count_mismatch_raises(tiny):
    ds, sampler, sub = tiny  # sub has 2 hops
    model = make_model("sage", ds.dim, 16, ds.num_classes, num_layers=3, seed=0)
    feats = ds.features.gather(sub.all_nodes)
    with pytest.raises(ValueError, match="hops"):
        model(Tensor(feats), sub)


def test_feature_row_mismatch_raises(tiny):
    ds, _, sub = tiny
    model = make_model("sage", ds.dim, 16, ds.num_classes, num_layers=2, seed=0)
    opt = SGD(model.parameters(), lr=0.1)
    bad = ds.features.gather(sub.all_nodes[:-1])
    with pytest.raises(ValueError, match="features rows"):
        train_step(model, opt, bad, sub, ds.labels)


def test_make_model_factory_and_fanouts():
    m = make_model("graphsage", 8, 4, 3, num_layers=1)
    assert isinstance(m, GraphSAGE)
    assert isinstance(make_model("gcn", 8, 4, 3, 1), GCN)
    assert isinstance(make_model("gat", 8, 4, 3, 1), GAT)
    with pytest.raises(ValueError):
        make_model("mlp", 8, 4, 3)
    assert default_fanouts("gat") == (10, 10, 5)
    assert default_fanouts("sage") == (10, 10, 10)


def test_model_determinism_per_seed():
    a = make_model("sage", 8, 4, 3, 2, seed=5)
    b = make_model("sage", 8, 4, 3, 2, seed=5)
    for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
        assert na == nb
        assert np.array_equal(pa.data, pb.data)


def test_state_dict_roundtrip():
    m = make_model("gcn", 8, 4, 3, 2, seed=0)
    state = m.state_dict()
    m2 = make_model("gcn", 8, 4, 3, 2, seed=1)
    m2.load_state_dict(state)
    for (_, p1), (_, p2) in zip(m.named_parameters(), m2.named_parameters()):
        assert np.array_equal(p1.data, p2.data)
    with pytest.raises(KeyError):
        m2.load_state_dict({"bogus": np.zeros(1)})


def test_gat_empty_edge_layer(tiny):
    ds, _, _ = tiny
    from repro.sampling import LayerAdj, SampledSubgraph

    seeds = np.array([0, 1])
    sub = SampledSubgraph(
        seeds=seeds,
        all_nodes=seeds,
        layers=[LayerAdj(np.empty(0, np.int64), np.empty(0, np.int64), 2, 2)],
        hop_frontiers=[seeds],
    )
    model = make_model("gat", ds.dim, 8, ds.num_classes, num_layers=1, seed=0)
    out = model(Tensor(ds.features.gather(seeds)), sub)
    assert out.data.shape == (2, ds.num_classes)
