"""Tests for SAGE aggregator variants and multi-head GAT."""

import numpy as np
import pytest

from repro.graph import make_dataset
from repro.models import Adam, make_model
from repro.models.sage import AGGREGATORS, SAGELayer
from repro.models.train import train_step
from repro.sampling import LayerAdj, NeighborSampler
from repro.tensor import Tensor, segment_max_aggregate, softmax_cross_entropy
from tests.tensor.gradcheck import check_grad

RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def tiny():
    ds = make_dataset("tiny", seed=0)
    sampler = NeighborSampler(ds.graph, (4, 4), np.random.default_rng(1))
    sub = sampler.sample(ds.train_idx[:16])
    return ds, sampler, sub


# ----------------------------------------------------------------------
# segment_max op
# ----------------------------------------------------------------------
def test_segment_max_values():
    h = Tensor(np.array([[1.0, 5.0], [3.0, 2.0], [0.0, 0.0]],
                        dtype=np.float32))
    src = np.array([0, 1])
    dst = np.array([0, 0])
    out = segment_max_aggregate(h, src, dst, num_dst=2)
    np.testing.assert_allclose(out.data[0], [3.0, 5.0])
    np.testing.assert_allclose(out.data[1], [0.0, 0.0])  # empty dst


def test_segment_max_gradcheck():
    src = np.array([0, 1, 2, 0])
    dst = np.array([0, 0, 1, 1])

    def loss(p):
        out = segment_max_aggregate(p["h"], src, dst, 2)
        from tests.tensor.test_ops import scalar
        return scalar(out)

    check_grad(loss, {"h": RNG.standard_normal((3, 4))})


def test_segment_max_no_edges():
    h = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
    out = segment_max_aggregate(h, np.empty(0, np.int64),
                                np.empty(0, np.int64), 2)
    np.testing.assert_allclose(out.data, 0.0)


# ----------------------------------------------------------------------
# SAGE aggregators
# ----------------------------------------------------------------------
@pytest.mark.parametrize("aggr", AGGREGATORS)
def test_sage_aggr_forward_and_grads(tiny, aggr):
    ds, _, sub = tiny
    model = make_model("sage", ds.dim, 16, ds.num_classes, 2, seed=0,
                       aggr=aggr)
    feats = ds.features.gather(sub.all_nodes)
    logits = model(Tensor(feats), sub)
    assert logits.data.shape == (len(sub.seeds), ds.num_classes)
    loss = softmax_cross_entropy(logits, ds.labels[sub.seeds])
    loss.backward()
    for name, p in model.named_parameters():
        assert p.grad is not None, name


@pytest.mark.parametrize("aggr", ["max", "sum"])
def test_sage_aggr_learns(tiny, aggr):
    ds, sampler, _ = tiny
    model = make_model("sage", ds.dim, 16, ds.num_classes, 2, seed=0,
                       aggr=aggr)
    opt = Adam(model.parameters(), lr=5e-3)
    rng = np.random.default_rng(0)
    losses = []
    for _ in range(25):
        sub = sampler.sample(rng.choice(ds.train_idx, 32, replace=False))
        loss, _ = train_step(model, opt, ds.features.gather(sub.all_nodes),
                             sub, ds.labels)
        losses.append(loss)
    assert np.mean(losses[-5:]) < np.mean(losses[:5])


def test_sage_aggregators_differ():
    adj = LayerAdj(np.array([0, 1, 2]), np.array([0, 0, 0]), 3, 1)
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((3, 4)).astype(np.float32))
    outs = {}
    for aggr in AGGREGATORS:
        layer = SAGELayer(4, 4, np.random.default_rng(5), aggr=aggr)
        outs[aggr] = layer(x, adj).data
    assert not np.allclose(outs["mean"], outs["max"])
    assert not np.allclose(outs["mean"], outs["sum"])


def test_sage_invalid_aggr():
    with pytest.raises(ValueError):
        SAGELayer(4, 4, np.random.default_rng(0), aggr="median")


# ----------------------------------------------------------------------
# Multi-head GAT
# ----------------------------------------------------------------------
def test_gat_multihead_shapes(tiny):
    ds, _, sub = tiny
    model = make_model("gat", ds.dim, 16, ds.num_classes, 2, seed=0, heads=4)
    feats = ds.features.gather(sub.all_nodes)
    logits = model(Tensor(feats), sub)
    assert logits.data.shape == (len(sub.seeds), ds.num_classes)
    assert np.isfinite(logits.data).all()
    # 4 heads x 2 layers worth of attention parameters.
    att_params = [n for n, _ in model.named_parameters() if "att_src" in n]
    assert len(att_params) == 8


def test_gat_multihead_all_heads_get_gradients(tiny):
    ds, _, sub = tiny
    model = make_model("gat", ds.dim, 16, ds.num_classes, 2, seed=0, heads=2)
    feats = ds.features.gather(sub.all_nodes)
    logits = model(Tensor(feats), sub)
    loss = softmax_cross_entropy(logits, ds.labels[sub.seeds])
    loss.backward()
    for name, p in model.named_parameters():
        assert p.grad is not None and np.abs(p.grad).sum() >= 0, name


def test_gat_multihead_learns(tiny):
    ds, sampler, _ = tiny
    model = make_model("gat", ds.dim, 16, ds.num_classes, 2, seed=0, heads=2)
    opt = Adam(model.parameters(), lr=5e-3)
    rng = np.random.default_rng(0)
    losses = []
    for _ in range(25):
        sub = sampler.sample(rng.choice(ds.train_idx, 32, replace=False))
        loss, _ = train_step(model, opt, ds.features.gather(sub.all_nodes),
                             sub, ds.labels)
        losses.append(loss)
    assert np.mean(losses[-5:]) < np.mean(losses[:5])


def test_gat_head_divisibility_check():
    with pytest.raises(ValueError, match="divisible"):
        make_model("gat", 8, 10, 3, 2, heads=4)
    from repro.models.gat import GATLayer
    with pytest.raises(ValueError, match="heads"):
        GATLayer(8, 8, np.random.default_rng(0), heads=0)
