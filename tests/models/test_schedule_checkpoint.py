"""Tests for LR schedules, early stopping, and checkpointing."""

import numpy as np
import pytest

from repro.models import Adam, SGD, make_model
from repro.models.checkpoint import load_checkpoint, save_checkpoint
from repro.models.module import Parameter
from repro.models.schedule import CosineLR, EarlyStopping, StepLR
from repro.models.train import train_step
from repro.graph import make_dataset
from repro.sampling import NeighborSampler


def make_opt(lr=0.1):
    return SGD([Parameter(np.ones(2))], lr=lr)


# ----------------------------------------------------------------------
# Schedulers
# ----------------------------------------------------------------------
def test_step_lr_decays_at_boundaries():
    opt = make_opt(0.1)
    sched = StepLR(opt, step_size=2, gamma=0.5)
    lrs = [sched.step() for _ in range(6)]
    assert lrs == pytest.approx([0.1, 0.05, 0.05, 0.025, 0.025, 0.0125])
    assert opt.lr == pytest.approx(0.0125)


def test_step_lr_validation():
    with pytest.raises(ValueError):
        StepLR(make_opt(), step_size=0)
    with pytest.raises(ValueError):
        StepLR(make_opt(), step_size=1, gamma=0.0)


def test_cosine_lr_anneals_to_min():
    opt = make_opt(1.0)
    sched = CosineLR(opt, total_epochs=10, min_lr=0.1)
    lrs = [sched.step() for _ in range(10)]
    assert lrs[0] < 1.0
    assert lrs[-1] == pytest.approx(0.1, abs=1e-9)
    assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))  # monotone


def test_cosine_lr_warmup_ramps():
    opt = make_opt(1.0)
    sched = CosineLR(opt, total_epochs=10, warmup_epochs=3)
    lrs = [sched.step() for _ in range(5)]
    assert lrs[0] == pytest.approx(1 / 3)
    assert lrs[2] == pytest.approx(1.0)
    assert lrs[3] < 1.0  # annealing begins


def test_cosine_validation():
    with pytest.raises(ValueError):
        CosineLR(make_opt(), total_epochs=0)
    with pytest.raises(ValueError):
        CosineLR(make_opt(), total_epochs=5, warmup_epochs=5)


def test_early_stopping_patience():
    stopper = EarlyStopping(patience=2)
    seq = [0.5, 0.6, 0.59, 0.58]
    results = [stopper.update(a) for a in seq]
    assert results == [False, False, False, True]
    assert stopper.best == pytest.approx(0.6)
    assert stopper.best_epoch == 1


def test_early_stopping_min_delta():
    stopper = EarlyStopping(patience=1, min_delta=0.05)
    assert not stopper.update(0.5)
    assert stopper.update(0.52)  # improvement below delta -> bad epoch


def test_early_stopping_validation():
    with pytest.raises(ValueError):
        EarlyStopping(patience=0)
    with pytest.raises(ValueError):
        EarlyStopping(min_delta=-1)


# ----------------------------------------------------------------------
# Checkpointing
# ----------------------------------------------------------------------
def trained_state(steps=5, seed=0):
    ds = make_dataset("tiny", seed=0)
    sampler = NeighborSampler(ds.graph, (3, 3), np.random.default_rng(1))
    model = make_model("sage", ds.dim, 16, ds.num_classes, 2, seed=seed)
    opt = Adam(model.parameters(), lr=3e-3)
    rng = np.random.default_rng(2)
    for _ in range(steps):
        sub = sampler.sample(rng.choice(ds.train_idx, 20, replace=False))
        train_step(model, opt, ds.features.gather(sub.all_nodes), sub,
                   ds.labels)
    return ds, sampler, model, opt


def test_checkpoint_roundtrip_model_and_adam(tmp_path):
    ds, sampler, model, opt = trained_state()
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint(path, model, opt, epoch=7, extra={"note": "x"})

    model2 = make_model("sage", ds.dim, 16, ds.num_classes, 2, seed=99)
    opt2 = Adam(model2.parameters(), lr=1.0)
    header = load_checkpoint(path, model2, opt2)
    assert header["epoch"] == 7
    assert header["extra"]["note"] == "x"
    for (_, a), (_, b) in zip(model.named_parameters(),
                              model2.named_parameters()):
        np.testing.assert_array_equal(a.data, b.data)
    assert opt2.lr == opt.lr
    assert opt2._t == opt._t
    np.testing.assert_array_equal(opt2._m[0], opt._m[0])


def test_resumed_training_matches_uninterrupted(tmp_path):
    """Training 5+5 steps with a checkpoint equals 10 straight steps."""
    ds, _, model_a, opt_a = trained_state(steps=5)
    path = str(tmp_path / "c.npz")
    save_checkpoint(path, model_a, opt_a)

    model_b = make_model("sage", ds.dim, 16, ds.num_classes, 2, seed=77)
    opt_b = Adam(model_b.parameters(), lr=3e-3)
    load_checkpoint(path, model_b, opt_b)

    sampler = NeighborSampler(ds.graph, (3, 3), np.random.default_rng(50))
    rng_a = np.random.default_rng(9)
    rng_b = np.random.default_rng(9)
    sampler2 = NeighborSampler(ds.graph, (3, 3), np.random.default_rng(50))
    for _ in range(5):
        sub_a = sampler.sample(rng_a.choice(ds.train_idx, 20, replace=False))
        train_step(model_a, opt_a, ds.features.gather(sub_a.all_nodes),
                   sub_a, ds.labels)
        sub_b = sampler2.sample(rng_b.choice(ds.train_idx, 20, replace=False))
        train_step(model_b, opt_b, ds.features.gather(sub_b.all_nodes),
                   sub_b, ds.labels)
    for (_, a), (_, b) in zip(model_a.named_parameters(),
                              model_b.named_parameters()):
        np.testing.assert_allclose(a.data, b.data, rtol=1e-6)


def test_checkpoint_sgd_momentum(tmp_path):
    model = make_model("gcn", 8, 4, 3, 1, seed=0)
    opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
    # One step to materialise velocity.
    for p in model.parameters():
        p.grad = np.ones_like(p.data)
    opt.step()
    path = str(tmp_path / "sgd.npz")
    save_checkpoint(path, model, opt)
    model2 = make_model("gcn", 8, 4, 3, 1, seed=1)
    opt2 = SGD(model2.parameters(), lr=0.5, momentum=0.9)
    load_checkpoint(path, model2, opt2)
    assert opt2.lr == pytest.approx(0.1)
    np.testing.assert_array_equal(opt2._velocity[0], opt._velocity[0])


def test_checkpoint_mismatch_raises(tmp_path):
    model = make_model("sage", 8, 4, 3, 2, seed=0)
    path = str(tmp_path / "m.npz")
    save_checkpoint(path, model)
    other = make_model("sage", 8, 8, 3, 2, seed=0)  # different hidden
    with pytest.raises((KeyError, ValueError)):
        load_checkpoint(path, other)


def test_checkpoint_adam_type_mismatch(tmp_path):
    model = make_model("sage", 8, 4, 3, 1, seed=0)
    opt = Adam(model.parameters())
    save_checkpoint(str(tmp_path / "a.npz"), model, opt)
    opt_sgd = SGD(model.parameters(), lr=0.1)
    with pytest.raises(TypeError):
        load_checkpoint(str(tmp_path / "a.npz"), model, opt_sgd)
